// Frozen copy of the pre-engine monolithic drivers (the "seed" drivers):
// core::solve() and core::solve_lms() exactly as they were before the layered
// solver engine (DLA backend + staged pipeline) replaced them.
//
// This is an ORACLE, not library code — the same role the naive GEMM triple
// loop plays for the kernel engine. tests/core/test_engine.cpp asserts the
// staged engine reproduces the seed drivers' eigenpairs, iteration counts and
// MatVec totals bit-for-bit, and bench/micro_engine.cpp measures wall-clock
// parity (the refactor must not tax the hot path). Do not "improve" this
// file; it is valuable precisely because it does not change.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/log.hpp"
#include "core/config.hpp"
#include "core/degrees.hpp"
#include "core/filter.hpp"
#include "core/lanczos.hpp"
#include "core/chase.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/multivector.hpp"
#include "la/heevd.hpp"
#include "la/householder.hpp"
#include "la/stedc.hpp"
#include "qr/condest.hpp"
#include "qr/qr_selector.hpp"

namespace chase::seeddrv {

using core::ChaseConfig;
using core::ChaseObserver;
using core::ChaseResult;
using core::IterationStats;
using core::RrSolver;
using la::Index;

namespace detail {

template <typename T, typename R>
void permute_active(la::MatrixView<T> m, Index first,
                    const std::vector<Index>& perm, std::vector<R>& ritz,
                    std::vector<R>& resid, std::vector<int>& degs,
                    la::Matrix<T>& scratch) {
  const Index count = Index(perm.size());
  scratch.resize(m.rows(), count);
  std::vector<R> ritz_old(ritz.begin() + first, ritz.begin() + first + count);
  std::vector<R> res_old(resid.begin() + first, resid.begin() + first + count);
  std::vector<int> deg_old(degs.begin() + first, degs.begin() + first + count);
  for (Index j = 0; j < count; ++j) {
    const Index src = perm[std::size_t(j)];
    std::copy(m.col(first + src), m.col(first + src) + m.rows(),
              scratch.col(j));
    ritz[std::size_t(first + j)] = ritz_old[std::size_t(src)];
    resid[std::size_t(first + j)] = res_old[std::size_t(src)];
    degs[std::size_t(first + j)] = deg_old[std::size_t(src)];
  }
  for (Index j = 0; j < count; ++j) {
    std::copy(scratch.col(j), scratch.col(j) + m.rows(), m.col(first + j));
  }
}

inline void record_lms_roundtrip(std::size_t bytes) {
  if (auto* t = perf::thread_tracker()) {
    t->record_memcpy(bytes, /*to_device=*/false);
    t->record_memcpy(bytes, /*to_device=*/true);
  }
}

}  // namespace detail

/// The pre-engine core::solve() monolith, verbatim.
template <typename HOp, typename T = typename HOp::Scalar>
ChaseResult<T> solve(HOp& h, const ChaseConfig& cfg,
                     ChaseObserver<T>* observer = nullptr,
                     la::ConstMatrixView<T> initial_subspace = {}) {
  using R = RealType<T>;
  using core::lanczos_entry;
  using core::round_up_even;
  const auto& grid = h.grid();
  const auto& rmap = h.row_map();
  const auto& cmap = h.col_map();
  const Index n = h.global_size();
  const Index ne = cfg.subspace();
  CHASE_CHECK_MSG(cfg.nev > 0 && ne <= n, "invalid nev/nex");
  CHASE_CHECK_MSG(cfg.initial_degree >= 2, "invalid initial degree");

  const Index mloc = rmap.local_size(grid.my_row());
  const Index bloc = cmap.local_size(grid.my_col());

  la::Matrix<T> c(mloc, ne), c2(mloc, ne), b(bloc, ne), b2(bloc, ne);
  la::Matrix<T> scratch;

  ChaseResult<T> result;
  if (cfg.use_custom_bounds) {
    CHASE_CHECK_MSG(cfg.custom_mu_1 < cfg.custom_mu_ne &&
                        cfg.custom_mu_ne < cfg.custom_b_sup,
                    "custom bounds must satisfy mu_1 < mu_ne < b_sup");
    result.bounds = {R(cfg.custom_b_sup), R(cfg.custom_mu_1),
                     R(cfg.custom_mu_ne)};
  } else {
    result.bounds = core::lanczos_bounds(h, ne, cfg.lanczos_steps,
                                         cfg.lanczos_vectors, cfg.seed);
  }
  const R b_sup = result.bounds.b_sup;
  R mu_1 = result.bounds.mu_1;
  R mu_ne = result.bounds.mu_ne;
  R center = (b_sup + mu_ne) / R(2);
  R half = (b_sup - mu_ne) / R(2);
  const R scale = std::max(std::abs(b_sup), std::abs(mu_1));
  const R tol = R(cfg.tol);

  Index given = 0;
  if (!initial_subspace.empty()) {
    CHASE_CHECK_MSG(initial_subspace.rows() == mloc &&
                        initial_subspace.cols() <= ne,
                    "initial subspace: expected local C-layout rows and at "
                    "most nev+nex columns");
    given = initial_subspace.cols();
    la::copy(initial_subspace, c.block(0, 0, mloc, given));
  }
  for (const auto& run : rmap.runs(grid.my_row())) {
    for (Index j = given; j < ne; ++j) {
      for (Index k = 0; k < run.length; ++k) {
        c(run.local_begin + k, j) = lanczos_entry<T>(
            cfg.seed, std::uint64_t(1000 + j), run.global_begin + k);
      }
    }
  }

  std::vector<R> ritz(std::size_t(ne), mu_1);
  std::vector<R> resid(std::size_t(ne), R(1));
  std::vector<int> degs(std::size_t(ne), round_up_even(cfg.initial_degree));
  Index locked = 0;
  int nan_recoveries = 0;

  for (int iter = 1; iter <= cfg.max_iterations; ++iter) {
    IterationStats stats;
    stats.iteration = iter;
    stats.locked_before = int(locked);
    const Index act = ne - locked;

    if (iter > 1) {
      mu_1 = *std::min_element(ritz.begin(), ritz.end());
      mu_ne = *std::max_element(ritz.begin(), ritz.end());
      center = (b_sup + mu_ne) / R(2);
      half = (b_sup - mu_ne) / R(2);
      if (!(half > R(0)) || !std::isfinite(half) || !std::isfinite(mu_1)) {
        CHASE_LOG_INFO(
            "damping interval collapsed (b_sup underestimated?); "
            "aborting solve");
        break;
      }
      if (cfg.optimize_degree) {
        core::optimize_degrees(ritz, resid, tol, center, half, int(locked),
                               cfg.max_degree, degs);
      } else {
        std::fill(degs.begin() + locked, degs.end(),
                  round_up_even(cfg.initial_degree));
      }
      std::vector<Index> perm(static_cast<std::size_t>(act));
      std::iota(perm.begin(), perm.end(), Index(0));
      std::stable_sort(perm.begin(), perm.end(), [&](Index x, Index y) {
        return degs[std::size_t(locked + x)] < degs[std::size_t(locked + y)];
      });
      detail::permute_active(c.view(), locked, perm, ritz, resid, degs,
                             scratch);
    }

    std::vector<int> act_degs(degs.begin() + locked, degs.end());
    stats.degrees = act_degs;
    stats.matvecs = core::chebyshev_filter(
        h, c.block(0, locked, mloc, act), b.block(0, locked, bloc, act),
        act_degs, center, half, mu_1);
    result.matvecs += stats.matvecs;

    {
      perf::RegionScope guard_scope(perf::Region::kFilter);
      std::vector<R> col_ok(std::size_t(act), R(1));
      for (Index j = 0; j < act; ++j) {
        for (Index i = 0; i < mloc; ++i) {
          const R mag = abs_value(c(i, locked + j));
          if (!std::isfinite(mag) || mag > R(1e140)) {
            col_ok[std::size_t(j)] = R(0);
            break;
          }
        }
      }
      grid.col_comm().all_reduce(col_ok.data(), act, comm::Reduction::kMin);
      const Index bad = act - Index(std::count(col_ok.begin(), col_ok.end(),
                                               R(1)));
      if (bad == act) {
        CHASE_LOG_INFO("filter diverged (b_sup too small?); aborting solve");
        result.iterations = iter;
        break;
      }
      if (bad > 0) {
        if (nan_recoveries >= 3) {
          CHASE_LOG_INFO(
              "filter output corrupt after repeated re-randomization; "
              "aborting solve");
          result.iterations = iter;
          break;
        }
        for (Index j = 0; j < act; ++j) {
          if (col_ok[std::size_t(j)] == R(1)) continue;
          const auto stream = std::uint64_t(500000 + nan_recoveries * ne +
                                            (locked + j));
          for (const auto& run : rmap.runs(grid.my_row())) {
            for (Index k = 0; k < run.length; ++k) {
              c(run.local_begin + k, locked + j) =
                  lanczos_entry<T>(cfg.seed, stream, run.global_begin + k);
            }
          }
          resid[std::size_t(locked + j)] = R(1);
        }
        ++nan_recoveries;
        perf::bump_counter("filter.nan_recovery", double(bad));
        CHASE_LOG_INFO("filter produced non-finite columns; re-randomized");
        result.stats.push_back(stats);
        result.iterations = iter;
        continue;
      }
    }

    stats.est_cond =
        double(qr::estimate_filtered_cond(ritz, center, half, degs,
                                          int(locked)));
    if (observer != nullptr) {
      observer->after_filter(iter, int(locked), c.view(), stats.est_cond);
    }

    auto qr_report =
        qr::caqr_1d(c.view(), rmap, grid.col_comm(), stats.est_cond, cfg.qr);
    stats.qr_variant = qr_report.selected;
    stats.qr_used = qr_report.used;
    stats.qr_fallback = qr_report.hhqr_fallback;
    stats.qr_potrf_failures = qr_report.potrf_failures;
    if (locked > 0) {
      la::copy(c2.block(0, 0, mloc, locked).as_const(),
               c.block(0, 0, mloc, locked));
    }
    la::copy(c.block(0, locked, mloc, act).as_const(),
             c2.block(0, locked, mloc, act));

    {
      perf::RegionScope rr(perf::Region::kRayleighRitz);
      auto c2_act = c2.block(0, locked, mloc, act);
      auto b2_act = b2.block(0, locked, bloc, act);
      dist::redistribute_c2b<T>(grid, rmap, cmap, c2_act.as_const(), b2_act);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);

      la::Matrix<T> a_act(act, act);
      la::gemm(T(1), la::Op::kConjTrans, b2_act.as_const(), la::Op::kNoTrans,
               b_act.as_const(), T(0), a_act.view());
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kGemm,
                     z * double(bloc) * double(act) * double(act));
      }
      grid.row_comm().all_reduce(a_act.data(), act * act);

      std::vector<R> theta;
      la::Matrix<T> evec_act(act, act);
      if (cfg.rr_solver == RrSolver::kDivideConquer) {
        la::heevd_dc(a_act.view(), theta, evec_act.view());
      } else {
        la::heevd(a_act.view(), theta, evec_act.view());
      }
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kSmall,
                     z * 9.0 * double(act) * double(act) * double(act));
      }
      std::copy(theta.begin(), theta.end(), ritz.begin() + locked);

      la::gemm(T(1), c2_act.as_const(), evec_act.cview(), T(0),
               c.block(0, locked, mloc, act));
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kGemm,
                     z * double(mloc) * double(act) * double(act));
      }
      la::copy(c.block(0, locked, mloc, act).as_const(), c2_act);
    }

    {
      perf::RegionScope res(perf::Region::kResidual);
      auto c2_act = c2.block(0, locked, mloc, act);
      auto b2_act = b2.block(0, locked, bloc, act);
      dist::redistribute_c2b<T>(grid, rmap, cmap, c2_act.as_const(), b2_act);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);

      std::vector<R> nrm(std::size_t(act), R(0));
      for (Index j = 0; j < act; ++j) {
        const R lambda = ritz[std::size_t(locked + j)];
        T* bj = b_act.col(j);
        const T* b2j = b2_act.col(j);
        R acc(0);
        for (Index i = 0; i < bloc; ++i) {
          const T d = bj[i] - T(lambda) * b2j[i];
          acc += real_part(conjugate(d) * d);
        }
        nrm[std::size_t(j)] = acc;
      }
      if (auto* t = perf::thread_tracker()) {
        t->add_mem_bytes(3.0 * double(bloc) * double(act) * sizeof(T));
      }
      grid.row_comm().all_reduce(nrm.data(), act);
      for (Index j = 0; j < act; ++j) {
        resid[std::size_t(locked + j)] =
            std::sqrt(nrm[std::size_t(j)]) / scale;
      }
    }

    Index new_locked = 0;
    while (locked + new_locked < ne &&
           resid[std::size_t(locked + new_locked)] < tol) {
      ++new_locked;
    }
    locked += new_locked;
    stats.locked_after = int(locked);
    const auto res_begin = resid.begin() + (locked - new_locked);
    if (res_begin != resid.end()) {
      stats.min_residual = double(*std::min_element(res_begin, resid.end()));
      stats.max_residual = double(*std::max_element(res_begin, resid.end()));
    }
    result.stats.push_back(stats);
    result.iterations = iter;
    if (observer != nullptr) observer->after_iteration(stats);

    if (locked >= cfg.nev) {
      result.converged = true;
      break;
    }
  }

  result.eigenvalues.assign(ritz.begin(), ritz.begin() + cfg.nev);
  result.eigenvectors.resize(mloc, cfg.nev);
  la::copy(c.block(0, 0, mloc, cfg.nev).as_const(),
           result.eigenvectors.view());
  return result;
}

/// The pre-engine core::solve_lms() monolith, verbatim.
template <typename HOp, typename T = typename HOp::Scalar>
ChaseResult<T> solve_lms(HOp& h,
                         const ChaseConfig& cfg,
                         ChaseObserver<T>* observer = nullptr) {
  using R = RealType<T>;
  using core::lanczos_entry;
  using core::round_up_even;
  const auto& grid = h.grid();
  const auto& rmap = h.row_map();
  const auto& cmap = h.col_map();
  const Index n = h.global_size();
  const Index ne = cfg.subspace();
  CHASE_CHECK_MSG(cfg.nev > 0 && ne <= n, "invalid nev/nex");

  const Index mloc = rmap.local_size(grid.my_row());
  const Index bloc = cmap.local_size(grid.my_col());

  la::Matrix<T> c(mloc, ne), b(bloc, ne);
  la::Matrix<T> cfull(n, ne), wfull(n, ne);
  la::Matrix<T> a(ne, ne), evec(ne, ne), scratch;

  ChaseResult<T> result;
  result.bounds = core::lanczos_bounds(h, ne, cfg.lanczos_steps,
                                       cfg.lanczos_vectors, cfg.seed);
  const R b_sup = result.bounds.b_sup;
  R mu_1 = result.bounds.mu_1;
  R mu_ne = result.bounds.mu_ne;
  R center = (b_sup + mu_ne) / R(2);
  R half = (b_sup - mu_ne) / R(2);
  const R scale = std::max(std::abs(b_sup), std::abs(mu_1));
  const R tol = R(cfg.tol);

  for (const auto& run : rmap.runs(grid.my_row())) {
    for (Index j = 0; j < ne; ++j) {
      for (Index k = 0; k < run.length; ++k) {
        c(run.local_begin + k, j) = lanczos_entry<T>(
            cfg.seed, std::uint64_t(1000 + j), run.global_begin + k);
      }
    }
  }

  std::vector<R> ritz(std::size_t(ne), mu_1);
  std::vector<R> resid(std::size_t(ne), R(1));
  std::vector<int> degs(std::size_t(ne), round_up_even(cfg.initial_degree));
  Index locked = 0;

  for (int iter = 1; iter <= cfg.max_iterations; ++iter) {
    IterationStats stats;
    stats.iteration = iter;
    stats.locked_before = int(locked);
    const Index act = ne - locked;

    if (iter > 1) {
      mu_1 = *std::min_element(ritz.begin(), ritz.end());
      mu_ne = *std::max_element(ritz.begin(), ritz.end());
      center = (b_sup + mu_ne) / R(2);
      half = (b_sup - mu_ne) / R(2);
      if (cfg.optimize_degree) {
        core::optimize_degrees(ritz, resid, tol, center, half, int(locked),
                               cfg.max_degree, degs);
      } else {
        std::fill(degs.begin() + locked, degs.end(),
                  round_up_even(cfg.initial_degree));
      }
      std::vector<Index> perm(static_cast<std::size_t>(act));
      std::iota(perm.begin(), perm.end(), Index(0));
      std::stable_sort(perm.begin(), perm.end(), [&](Index x, Index y) {
        return degs[std::size_t(locked + x)] < degs[std::size_t(locked + y)];
      });
      detail::permute_active(c.view(), locked, perm, ritz, resid, degs,
                             scratch);
    }

    std::vector<int> act_degs(degs.begin() + locked, degs.end());
    stats.degrees = act_degs;
    stats.matvecs = core::chebyshev_filter(
        h, c.block(0, locked, mloc, act), b.block(0, locked, bloc, act),
        act_degs, center, half, mu_1);
    result.matvecs += stats.matvecs;

    {
      perf::RegionScope guard_scope(perf::Region::kFilter);
      std::vector<R> col_ok(std::size_t(act), R(1));
      for (Index j = 0; j < act; ++j) {
        for (Index i = 0; i < mloc; ++i) {
          const R mag = abs_value(c(i, locked + j));
          if (!std::isfinite(mag) || mag > R(1e140)) {
            col_ok[std::size_t(j)] = R(0);
            break;
          }
        }
      }
      grid.col_comm().all_reduce(col_ok.data(), act, comm::Reduction::kMin);
      if (std::count(col_ok.begin(), col_ok.end(), R(1)) != act) {
        CHASE_LOG_INFO("filter diverged (b_sup too small?); aborting solve");
        result.iterations = iter;
        break;
      }
    }
    stats.est_cond = double(
        qr::estimate_filtered_cond(ritz, center, half, degs, int(locked)));
    if (observer != nullptr) {
      observer->after_filter(iter, int(locked), c.view(), stats.est_cond);
    }

    {
      perf::RegionScope qr_scope(perf::Region::kQr);
      dist::gather_rows(grid.col_comm(), rmap, c.view().as_const(),
                        cfull.view());
      la::householder_orthonormalize(cfull.view());
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kPanel,
                     4.0 * z * double(n) * double(ne) * double(ne));
      }
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(ne) *
                                   sizeof(T));
      if (locked > 0) {
        la::copy(wfull.block(0, 0, n, locked).as_const(),
                 cfull.block(0, 0, n, locked));
      }
      dist::scatter_rows(rmap, grid.my_row(), cfull.view().as_const(),
                         c.view());
    }
    stats.qr_variant = qr::QrVariant::kHouseholder;

    {
      perf::RegionScope rr(perf::Region::kRayleighRitz);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);
      dist::gather_rows(grid.row_comm(), cmap, b_act.as_const(),
                        wfull.block(0, locked, n, act));

      auto a_act = a.block(0, 0, act, act);
      la::gemm(T(1), la::Op::kConjTrans,
               cfull.block(0, locked, n, act).as_const(), la::Op::kNoTrans,
               wfull.block(0, locked, n, act).as_const(), T(0), a_act);
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kPanel,
                     z * double(n) * double(act) * double(act));
      }
      std::vector<R> theta;
      auto evec_act = evec.block(0, 0, act, act);
      la::heevd(a_act, theta, evec_act);
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 4.0 : 1.0;
        t->add_flops(perf::FlopClass::kSmall,
                     z * 9.0 * double(act) * double(act) * double(act));
      }
      std::copy(theta.begin(), theta.end(), ritz.begin() + locked);

      la::gemm(T(1), cfull.block(0, locked, n, act).as_const(),
               evec_act.as_const(), T(0), wfull.block(0, locked, n, act));
      la::copy(wfull.block(0, locked, n, act).as_const(),
               cfull.block(0, locked, n, act));
      if (auto* t = perf::thread_tracker()) {
        const double z = kIsComplex<T> ? 8.0 : 2.0;
        t->add_flops(perf::FlopClass::kPanel,
                     z * double(n) * double(act) * double(act));
      }
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(act) *
                                   sizeof(T));
      dist::scatter_rows(rmap, grid.my_row(), cfull.view().as_const(),
                         c.view());
    }

    {
      perf::RegionScope res_scope(perf::Region::kResidual);
      auto b_act = b.block(0, locked, bloc, act);
      h.apply_c2b(T(1), c.block(0, locked, mloc, act).as_const(), T(0), b_act);
      dist::gather_rows(grid.row_comm(), cmap, b_act.as_const(),
                        wfull.block(0, locked, n, act));
      detail::record_lms_roundtrip(std::size_t(n) * std::size_t(act) *
                                   sizeof(T));
      for (Index j = 0; j < act; ++j) {
        const R lambda = ritz[std::size_t(locked + j)];
        R acc(0);
        for (Index i = 0; i < n; ++i) {
          const T d = wfull(i, locked + j) - T(lambda) * cfull(i, locked + j);
          acc += real_part(conjugate(d) * d);
        }
        resid[std::size_t(locked + j)] = std::sqrt(acc) / scale;
      }
      if (auto* t = perf::thread_tracker()) {
        t->add_mem_bytes(3.0 * double(n) * double(act) * sizeof(T));
      }
    }

    la::copy(cfull.view().as_const(), wfull.view());

    Index new_locked = 0;
    while (locked + new_locked < ne &&
           resid[std::size_t(locked + new_locked)] < tol) {
      ++new_locked;
    }
    locked += new_locked;
    stats.locked_after = int(locked);
    const auto res_begin = resid.begin() + (locked - new_locked);
    if (res_begin != resid.end()) {
      stats.min_residual = double(*std::min_element(res_begin, resid.end()));
      stats.max_residual = double(*std::max_element(res_begin, resid.end()));
    }
    result.stats.push_back(stats);
    result.iterations = iter;
    if (observer != nullptr) observer->after_iteration(stats);

    if (locked >= cfg.nev) {
      result.converged = true;
      break;
    }
  }

  result.eigenvalues.assign(ritz.begin(), ritz.begin() + cfg.nev);
  result.eigenvectors.resize(mloc, cfg.nev);
  la::copy(c.block(0, 0, mloc, cfg.nev).as_const(),
           result.eigenvectors.view());
  return result;
}

}  // namespace chase::seeddrv
