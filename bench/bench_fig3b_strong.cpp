// Figure 3b — strong scaling on the In2O3-115k problem: nev = 1200 (~1% of
// the spectrum), nex = 400, node counts 4, 9, ..., 144, ChASE(LMS/STD/NCCL)
// vs ELPA1-GPU / ELPA2-GPU.
//
// Method: the scaled In2O3 analogue is solved for real to convergence; its
// measured iteration structure (locked fractions, per-vector filter degrees,
// QR variants) is replayed at the paper's full scale through the validated
// event-stream model and priced on the A100/HDR machine model. ELPA comes
// from the calibrated direct-solver cost model (src/model/elpa_model.hpp).
// Claims to check:
//   * ChASE(NCCL) scales almost ideally (paper: 18.6x from 4 -> 144 nodes,
//     65 s -> 3.5 s); STD 6.6x; LMS only 2.5x;
//   * ELPA1/ELPA2 gain only ~6x from 36x more nodes;
//   * at 144 nodes ChASE(NCCL) is ~28x faster than ELPA2-GPU.
#include <cmath>
#include <complex>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/sequential.hpp"
#include "gen/suite.hpp"
#include "model/chase_model.hpp"
#include "model/elpa_model.hpp"
#include "perf/report.hpp"

namespace {

using namespace chase;
using model::ChaseModelSetup;
using model::IterationShape;
using model::Scheme;
using perf::Backend;

/// Convert driver stats to the model's measured-history form.
std::vector<model::MeasuredIteration> to_history(
    const std::vector<core::IterationStats>& stats) {
  std::vector<model::MeasuredIteration> out;
  for (const auto& s : stats) {
    out.push_back({s.locked_before, s.degrees, s.qr_variant});
  }
  return out;
}

double chase_time(const perf::MachineModel& m, int nodes, Scheme scheme,
                  Backend backend,
                  const std::vector<IterationShape>& history_template,
                  la::Index n_size, la::Index nev, la::Index nex) {
  const int k = int(std::lround(std::sqrt(double(nodes))));
  ChaseModelSetup s;
  s.n = n_size;
  s.nev = nev;
  s.nex = nex;
  s.scheme = scheme;
  s.backend = backend;
  if (scheme == Scheme::kLms) {
    s.nprow = s.npcol = k;
    s.gpus_per_rank = 4;
  } else {
    s.nprow = s.npcol = 2 * k;
  }
  auto history = history_template;
  if (scheme == Scheme::kLms) {
    for (auto& it : history) it.qr = qr::QrVariant::kHouseholder;
  }
  return perf::sum_costs(model::model_chase(m, s, history)).total();
}

}  // namespace

int main() {
  using T = std::complex<double>;
  perf::MachineModel m;

  // 1) Real converged run of the scaled analogue to get the iteration
  //    structure (Section 4.5.2's setup at 1/50 linear scale: ~1% of the
  //    spectrum requested).
  auto suite = gen::table1_suite_medium();
  const auto& p = suite[4];  // In2O3-115k analogue
  auto h = gen::suite_matrix<T>(p);
  core::ChaseConfig cfg;
  cfg.nev = std::max<la::Index>(p.n / 100, 8);  // ~1% of the spectrum
  cfg.nex = std::max<la::Index>(cfg.nev / 3, 6);
  cfg.tol = 1e-10;
  auto real = core::solve_sequential<T>(h.cview(), cfg);
  std::printf("Figure 3b: strong scaling, In2O3 115k, nev=1200, nex=400 "
              "(modeled from a real run of the\nscaled analogue: N=%lld, "
              "nev=%lld, %d iterations, %ld MatVecs, converged=%s)\n\n",
              (long long)p.n, (long long)cfg.nev, real.iterations,
              real.matvecs, real.converged ? "yes" : "NO");

  // 2) Replay at the paper's scale.
  const la::Index kN = 115459, kNev = 1200, kNex = 400;
  auto history = model::rescale_history(to_history(real.stats),
                                        cfg.subspace(), kNev + kNex);

  bench::print_rule(88);
  std::printf("%6s %6s | %9s %9s %9s | %10s %10s\n", "nodes", "GPUs",
              "LMS (s)", "STD (s)", "NCCL (s)", "ELPA1 (s)", "ELPA2 (s)");
  bench::print_rule(88);

  perf::CsvWriter csv("fig3b_strong.csv");
  csv.header({"nodes", "gpus", "lms_s", "std_s", "nccl_s", "elpa1_s",
              "elpa2_s"});
  double first[5] = {0, 0, 0, 0, 0}, last[5] = {0, 0, 0, 0, 0};
  for (int nodes : {4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144}) {
    double t[5];
    t[0] = chase_time(m, nodes, Scheme::kLms, Backend::kStdGpu, history, kN,
                      kNev, kNex);
    t[1] = chase_time(m, nodes, Scheme::kNew, Backend::kStdGpu, history, kN,
                      kNev, kNex);
    t[2] = chase_time(m, nodes, Scheme::kNew, Backend::kNcclGpu, history, kN,
                      kNev, kNex);
    model::ElpaModelSetup es;
    es.n = kN;
    es.nev = kNev;
    es.nranks = 4 * nodes;
    es.stages = 1;
    t[3] = model::model_elpa(m, es).total();
    es.stages = 2;
    t[4] = model::model_elpa(m, es).total();

    csv.row(nodes, 4 * nodes, t[0], t[1], t[2], t[3], t[4]);
    if (nodes == 4) std::copy(t, t + 5, first);
    std::copy(t, t + 5, last);
    std::printf("%6d %6d | %9.1f %9.1f %9.2f | %10.1f %10.1f\n", nodes,
                4 * nodes, t[0], t[1], t[2], t[3], t[4]);
  }
  bench::print_rule(88);

  std::printf("\nSpeedups 4 -> 144 nodes (paper values in parentheses):\n");
  const char* names[] = {"LMS", "STD", "NCCL", "ELPA1", "ELPA2"};
  const char* paper[] = {"2.5x", "6.6x", "18.6x", "6.7x", "5.9x"};
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-6s %6.1fx  (%s)\n", names[i], first[i] / last[i],
                paper[i]);
  }
  std::printf("\nNCCL vs ELPA2 at 144 nodes: %.1fx (paper: ~28x, "
              "98 s vs 3.5 s)\n", last[4] / last[2]);
  std::printf("NCCL vs LMS at 4 nodes: %.2fx (paper: 2.09x); at 144 nodes: "
              "%.1fx (paper: 15.7x)\n",
              first[0] / first[2], last[0] / last[2]);
  return 0;
}
