// Ablation: the QR variants of Algorithm 4 across condition numbers.
//
// Sweeps kappa(X) over the selector's decision regions and measures each
// variant's runtime and the orthogonality it achieves — the data behind the
// thresholds (20, u^{-1/2}) of the selection heuristic.
#include <benchmark/benchmark.h>

#include <complex>

#include "common/rng.hpp"
#include "la/norms.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "qr/cholqr.hpp"
#include "qr/tsqr.hpp"

namespace {

using namespace chase;
using la::Index;

/// Tall matrix with condition number ~10^log_kappa.
template <typename T>
la::Matrix<T> conditioned(Index m, Index n, double log_kappa,
                          std::uint64_t seed) {
  using R = RealType<T>;
  Rng rng(seed);
  la::Matrix<T> q1(m, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) q1(i, j) = rng.gaussian<T>();
  }
  la::householder_orthonormalize(q1.view());
  for (Index j = 0; j < n; ++j) {
    const R sigma = R(std::pow(10.0, -log_kappa * double(j) / double(n - 1)));
    la::scal(m, T(sigma), q1.col(j));
  }
  // Mix columns with a small random rotation so the conditioning is not
  // axis-aligned.
  la::Matrix<T> q2(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) q2(i, j) = rng.gaussian<T>();
  }
  la::householder_orthonormalize(q2.view());
  la::Matrix<T> x(m, n);
  la::gemm(T(1), la::Op::kNoTrans, q1.cview(), la::Op::kConjTrans, q2.cview(),
           T(0), x.view());
  return x;
}

enum Variant { kChol1, kChol2, kShifted, kHouseholder, kTsqr };

void BM_QrVariant(benchmark::State& state) {
  using T = std::complex<double>;
  const Index m = 4096, n = 128;
  const int variant = int(state.range(0));
  const double log_kappa = double(state.range(1));
  auto x0 = conditioned<T>(m, n, log_kappa, 11);

  double orth = 0;
  int failures = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto x = la::clone(x0.cview());
    state.ResumeTiming();
    int info = 0;
    switch (variant) {
      case kChol1:
        info = qr::cholqr(x.view(), nullptr, 1);
        break;
      case kChol2:
        info = qr::cholqr(x.view(), nullptr, 2);
        break;
      case kShifted:
        info = qr::shifted_cholqr_step(x.view(), nullptr, m);
        if (info == 0) info = qr::cholqr(x.view(), nullptr, 2);
        break;
      case kHouseholder:
        la::householder_orthonormalize(x.view());
        break;
      case kTsqr: {
        comm::Communicator self;
        qr::tsqr(x.view(), self);
        break;
      }
    }
    state.PauseTiming();
    if (info != 0) {
      ++failures;
    } else {
      orth = double(la::orthogonality_error(x.cview()));
    }
    state.ResumeTiming();
  }
  state.counters["orth_err"] = orth;
  state.counters["potrf_failures"] = failures;
}

void register_all() {
  static const char* names[] = {"CholQR1", "CholQR2", "sCholQR2", "HHQR", "TSQR"};
  for (int v = 0; v <= kTsqr; ++v) {
    for (int lk : {1, 4, 7, 10}) {
      const std::string name =
          std::string("QR/") + names[v] + "/kappa=1e" + std::to_string(lk);
      benchmark::RegisterBenchmark(name.c_str(), BM_QrVariant)->Args({v, lk});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
