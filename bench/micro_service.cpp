// Throughput of the solver service on a small-problem mix: serial
// one-at-a-time submission vs batched submit-all, plus the standalone
// (pre-service) client loop as the no-service baseline. Records jobs/sec,
// per-job latency percentiles, batch occupancy, the arena-pool counters
// backing the fleet-wide zero-steady-state-allocation claim, and a typed-
// rejection segment against an oversubscribed bounded queue. Results land
// in results/bench_service.json for scripts/compare_bench.py to gate.
//
// The speedup_vs_serial gate is hardware-aware: batching wins wall-clock by
// running independent jobs on parallel workers (and by amortizing dispatch
// and arena setup), so the >= 1.5x requirement applies when more than one
// CPU is available; on a single-CPU host the gate degrades to "batching
// must not lose" (>= 0.95x) and the recorded cpu count says why.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/timer.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "svc/service.hpp"

namespace {

using namespace chase;
using la::Index;

struct Problem {
  bool complex_scalar = false;
  Index n = 0;
  la::Matrix<double> hd;
  la::Matrix<std::complex<double>> hz;
  core::ChaseConfig cfg;
};

core::ChaseConfig mix_cfg(Index nev, Index nex, std::uint64_t seed) {
  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = nex;
  cfg.seed = seed;
  return cfg;
}

/// The small-problem mix: two sizes x both scalar types, round-robin — the
/// many-correlated-small-eigenproblems traffic ChASE serves (DFT
/// self-consistency sequences), where per-job overhead matters most.
std::vector<Problem> make_mix(int jobs) {
  std::vector<Problem> mix(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    Problem& prob = mix[std::size_t(i)];
    const int kind = i % 4;
    prob.complex_scalar = kind % 2 == 1;
    prob.n = kind < 2 ? 40 : 56;
    const Index nev = kind < 2 ? 5 : 6;
    const Index nex = kind < 2 ? 3 : 4;
    prob.cfg = mix_cfg(nev, nex, 2023 + std::uint64_t(i));
    const auto eigs = gen::uniform_spectrum<double>(prob.n, -1.0, 3.0);
    if (prob.complex_scalar) {
      prob.hz = gen::hermitian_with_spectrum<std::complex<double>>(
          eigs, 50 + std::uint64_t(i));
    } else {
      prob.hd =
          gen::hermitian_with_spectrum<double>(eigs, 50 + std::uint64_t(i));
    }
  }
  return mix;
}

svc::Submission submit(svc::SolverService& service, const Problem& prob) {
  return prob.complex_scalar ? service.submit(prob.hz.cview(), prob.cfg)
                             : service.submit(prob.hd.cview(), prob.cfg);
}

double run_standalone(const std::vector<Problem>& mix) {
  WallTimer timer;
  for (const Problem& prob : mix) {
    if (prob.complex_scalar) {
      (void)core::solve_sequential<std::complex<double>>(prob.hz.cview(),
                                                         prob.cfg);
    } else {
      (void)core::solve_sequential<double>(prob.hd.cview(), prob.cfg);
    }
  }
  return timer.seconds();
}

double run_serial(const std::vector<Problem>& mix) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  svc::SolverService service(cfg);
  WallTimer timer;
  for (const Problem& prob : mix) {
    const auto sub = submit(service, prob);
    if (!sub.ok()) return -1;
    service.wait(sub.id);
  }
  return timer.seconds();
}

struct BatchedRun {
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double occupancy = 0;
  long pool_entries = 0;
  long pool_high_water = 0;
  long steady_growth = 0;
};

BatchedRun run_batched(const std::vector<Problem>& mix, int workers) {
  svc::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = 8;
  cfg.max_queue_depth = long(mix.size());
  cfg.start_paused = true;
  svc::SolverService service(cfg);

  std::vector<svc::JobId> ids;
  for (const Problem& prob : mix) {
    const auto sub = submit(service, prob);
    if (!sub.ok()) return {};
    ids.push_back(sub.id);
  }
  WallTimer timer;
  service.resume();
  service.drain();
  BatchedRun out;
  out.seconds = timer.seconds();

  std::vector<double> latencies_ms;
  for (const auto id : ids) {
    const auto info = service.info(id);
    latencies_ms.push_back(1e3 * (info.queue_seconds + info.solve_seconds));
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double p) {
    const auto idx = std::size_t(p * double(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  out.p50_ms = pct(0.50);
  out.p99_ms = pct(0.99);
  const double batches = service.counter("svc.batch.count");
  out.occupancy =
      batches > 0 ? service.counter("svc.batch.jobs") / batches : 0;
  out.pool_entries = service.pool_entries();
  out.pool_high_water = service.pool_high_water();
  out.steady_growth = service.pool_steady_growth();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = chase::bench::quick_mode();
  const std::string out_path =
      argc > 1 ? argv[1] : "results/bench_service.json";

  const int jobs = quick ? 32 : 96;
  const int reps = quick ? 2 : 3;
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  const int workers = int(std::min(4u, cpus));
  const auto mix = make_mix(jobs);

  double standalone_s = 1e99, serial_s = 1e99;
  BatchedRun batched;
  batched.seconds = 1e99;
  for (int r = 0; r < reps; ++r) {
    standalone_s = std::min(standalone_s, run_standalone(mix));
    const double serial = run_serial(mix);
    if (serial < 0) {
      std::fprintf(stderr, "serial submission rejected\n");
      return 1;
    }
    serial_s = std::min(serial_s, serial);
    const BatchedRun run = run_batched(mix, workers);
    if (run.seconds <= 0) {
      std::fprintf(stderr, "batched submission rejected\n");
      return 1;
    }
    if (run.seconds < batched.seconds) batched = run;
  }

  // Oversubscription segment: a bounded queue under a paused service must
  // reject the overflow typed — and still finish the admitted jobs.
  long oversub_accepted = 0, oversub_rejected = 0;
  const long oversub_submitted = 32;
  {
    svc::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.max_queue_depth = 8;
    cfg.start_paused = true;
    svc::SolverService service(cfg);
    for (long i = 0; i < oversub_submitted; ++i) {
      const auto sub = submit(service, mix[std::size_t(i) % mix.size()]);
      if (sub.ok()) {
        ++oversub_accepted;
      } else if (sub.error == svc::SvcError::kQueueFull) {
        ++oversub_rejected;
      }
    }
    service.resume();
    service.drain();
  }

  const double standalone_jps = double(jobs) / standalone_s;
  const double serial_jps = double(jobs) / serial_s;
  const double batched_jps = double(jobs) / batched.seconds;

  std::printf("service mix: %d jobs (n=40/56, d/z), %d workers, %u cpus\n",
              jobs, workers, cpus);
  std::printf("  standalone loop   %7.3fs  %7.1f jobs/s\n", standalone_s,
              standalone_jps);
  std::printf("  serial submit     %7.3fs  %7.1f jobs/s\n", serial_s,
              serial_jps);
  std::printf("  batched submit    %7.3fs  %7.1f jobs/s  (%.2fx serial)\n",
              batched.seconds, batched_jps, batched_jps / serial_jps);
  std::printf("  latency p50 %.2fms p99 %.2fms  occupancy %.2f  "
              "pool %ld arenas (hw %ld)  steady growth %ld\n",
              batched.p50_ms, batched.p99_ms, batched.occupancy,
              batched.pool_entries, batched.pool_high_water,
              batched.steady_growth);
  std::printf("  oversubscription: %ld submitted, %ld accepted, %ld "
              "rejected typed\n",
              oversub_submitted, oversub_accepted, oversub_rejected);

  std::filesystem::create_directories(
      std::filesystem::path(out_path).parent_path());
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n \"service\": {\n");
  std::fprintf(f, "  \"jobs\": %d,\n  \"workers\": %d,\n  \"cpus\": %u,\n",
               jobs, workers, cpus);
  std::fprintf(f, "  \"max_batch\": 8,\n");
  std::fprintf(f,
               "  \"standalone_seconds\": %.6f,\n"
               "  \"serial_seconds\": %.6f,\n"
               "  \"batched_seconds\": %.6f,\n",
               standalone_s, serial_s, batched.seconds);
  std::fprintf(f,
               "  \"standalone_jobs_per_sec\": %.3f,\n"
               "  \"serial_jobs_per_sec\": %.3f,\n"
               "  \"batched_jobs_per_sec\": %.3f,\n",
               standalone_jps, serial_jps, batched_jps);
  std::fprintf(f,
               "  \"speedup_vs_serial\": %.4f,\n"
               "  \"speedup_vs_standalone\": %.4f,\n",
               batched_jps / serial_jps, batched_jps / standalone_jps);
  std::fprintf(f,
               "  \"p50_ms\": %.4f,\n  \"p99_ms\": %.4f,\n"
               "  \"mean_batch_occupancy\": %.4f,\n",
               batched.p50_ms, batched.p99_ms, batched.occupancy);
  std::fprintf(f,
               "  \"pool_entries\": %ld,\n  \"pool_high_water\": %ld,\n"
               "  \"steady_arena_growth\": %ld,\n",
               batched.pool_entries, batched.pool_high_water,
               batched.steady_growth);
  std::fprintf(f,
               "  \"oversub_submitted\": %ld,\n"
               "  \"oversub_accepted\": %ld,\n"
               "  \"oversub_rejected\": %ld\n",
               oversub_submitted, oversub_accepted, oversub_rejected);
  std::fprintf(f, " }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
