// Generalized eigenproblem A x = lambda B x — the raw form DFT codes hand
// to the eigensolver (A the FLAPW Hamiltonian, B the non-orthogonal basis
// overlap, Hermitian positive definite).
//
// ChASE reduces the pair to standard form through the Cholesky factor of B
// and applies the transformed operator matrix-free; this example builds a
// synthetic (A, B) pair with a known generalized spectrum, solves it, and
// verifies both the eigenvalues and the B-orthonormality of the returned
// eigenvectors.
#include <complex>
#include <cstdio>

#include "common/rng.hpp"
#include "core/generalized.hpp"
#include "core/progress.hpp"
#include "gen/spectrum.hpp"
#include "la/norms.hpp"

int main() {
  using namespace chase;
  using T = std::complex<double>;

  const la::Index n = 400;
  const la::Index nev = 12;

  // Known generalized spectrum: pick lambda_i, a B-orthonormal basis is
  // implied by construction A = B^(1/2)-conjugated prescription. Simplest
  // exact construction: B = R^H R from a random well-conditioned R, and
  // A = R^H D' R with D' the prescribed eigenvalues — then A x = lambda B x
  // has exactly the eigenvalues of D'.
  auto eigs = gen::dft_like_spectrum<double>(n, 77);
  // R must stay well conditioned (a fully random triangular factor has
  // condition ~2^n): unit-ish diagonal plus a small strictly-upper part.
  Rng rng(78);
  la::Matrix<T> r(n, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < j; ++i) {
      r(i, j) = T(0.2 / std::sqrt(double(n))) * rng.gaussian<T>();
    }
    r(j, j) = T(1.0 + 0.5 * rng.uniform(0.0, 1.0));
  }
  la::Matrix<T> b(n, n), a(n, n), tmp(n, n);
  la::gemm(T(1), la::Op::kConjTrans, r.cview(), la::Op::kNoTrans, r.cview(),
           T(0), b.view());
  // A = R^H D R.
  la::Matrix<T> dr = la::clone(r.cview());
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i <= j; ++i) {
      dr(i, j) *= T(eigs[std::size_t(i)]);
    }
  }
  la::gemm(T(1), la::Op::kConjTrans, r.cview(), la::Op::kNoTrans, dr.cview(),
           T(0), a.view());
  // Hermitize against rounding.
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < j; ++i) {
      const T avg = (a(i, j) + conjugate(a(j, i))) / 2.0;
      a(i, j) = avg;
      a(j, i) = conjugate(avg);
    }
    a(j, j) = T(real_part(a(j, j)));
  }

  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  core::ProgressPrinter<T> progress;
  auto res = core::solve_generalized<T>(a.cview(), b.cview(), cfg, &progress);
  std::printf("\n%s in %d iterations (%ld MatVecs)\n",
              res.converged ? "converged" : "NOT converged", res.iterations,
              res.matvecs);

  std::printf("%4s %16s %16s %10s\n", "i", "computed", "exact", "error");
  for (la::Index j = 0; j < nev; ++j) {
    std::printf("%4lld %16.10f %16.10f %10.2e\n", (long long)j,
                res.eigenvalues[std::size_t(j)], eigs[std::size_t(j)],
                std::abs(res.eigenvalues[std::size_t(j)] -
                         eigs[std::size_t(j)]));
  }

  // B-orthonormality check: || X^H B X - I ||_F.
  la::Matrix<T> bx(n, nev), xhbx(nev, nev);
  la::gemm(T(1), b.cview(), res.eigenvectors.view().as_const(), T(0),
           bx.view());
  la::gemm(T(1), la::Op::kConjTrans, res.eigenvectors.view().as_const(),
           la::Op::kNoTrans, bx.cview(), T(0), xhbx.view());
  for (la::Index j = 0; j < nev; ++j) xhbx(j, j) -= T(1);
  std::printf("\n||X^H B X - I||_F = %.2e (B-orthonormal eigenvectors)\n",
              la::frobenius_norm(xhbx.cview()));
  return res.converged ? 0 : 1;
}
