// DFT self-consistency loop: sequences of correlated eigenproblems.
//
// ChASE's original motivation (Section 1): in Density Functional Theory the
// Hamiltonian is rebuilt every self-consistency step from the previous
// density, so consecutive eigenproblems are strongly correlated — and an
// iterative solver can be fed the previous step's eigenvectors as the
// initial subspace, cutting the MatVec count dramatically.
//
// This example simulates such a sequence: H_k = H_0 + epsilon_k * P with a
// shrinking Hermitian perturbation (the paper's reference [5] shows real
// DFT sequences behave this way) and compares cold starts (random subspace
// every step) against warm starts (previous eigenvectors seed the subspace).
#include <complex>
#include <cstdio>

#include "common/rng.hpp"
#include "core/sequence.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"

namespace {

using namespace chase;
using T = std::complex<double>;

la::Matrix<T> random_hermitian(la::Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> g(n, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < n; ++i) g(i, j) = rng.gaussian<T>();
  }
  la::Matrix<T> a(n, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < n; ++i) {
      a(i, j) = (g(i, j) + conjugate(g(j, i))) / 2.0;
    }
  }
  return a;
}

}  // namespace

int main() {
  const la::Index n = 300;
  const la::Index nev = 12, nex = 6;

  auto h0 = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 7), 7);
  auto pert = random_hermitian(n, 8);

  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = nex;
  cfg.tol = 1e-9;

  std::printf("DFT-like sequence of correlated eigenproblems "
              "(N=%lld, nev=%lld, tol=%.0e)\n",
              (long long)n, (long long)nev, cfg.tol);
  std::printf("%6s %10s | %8s %9s | %8s %9s\n", "step", "epsilon",
              "cold it", "cold MV", "warm it", "warm MV");

  core::ChaseSequence<T> seq(cfg, /*warm_initial_degree=*/10);
  long cold_total = 0, warm_total = 0;
  double eps = 0.05;
  for (int step = 0; step < 5; ++step, eps *= 0.3) {
    la::Matrix<T> h = la::clone(h0.cview());
    for (la::Index j = 0; j < n; ++j) {
      for (la::Index i = 0; i < n; ++i) h(i, j) += T(eps) * pert(i, j);
    }

    auto cold = core::solve_sequential<T>(h.cview(), cfg);
    // ChaseSequence re-feeds the previous eigenvectors and lowers the
    // first-iteration degree (the residuals already start at O(eps)).
    comm::Communicator self;
    comm::Grid2d grid(self, 1, 1);
    auto map = dist::IndexMap::block(n, 1);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());
    const bool first = !seq.has_guess();
    auto warm = seq.solve_next(hd);
    std::printf("%6d %10.2e | %8d %9ld | %8d %9ld%s\n", step, eps,
                cold.iterations, cold.matvecs, warm.iterations, warm.matvecs,
                first ? "  (first step: cold by definition)" : "");
    cold_total += cold.matvecs;
    warm_total += warm.matvecs;
  }
  std::printf("\ntotal MatVecs: cold %ld vs warm %ld (%.2fx saved) — the "
              "reason ChASE is an\niterative solver for DFT sequences "
              "(Section 1 and reference [5]).\n",
              cold_total, warm_total,
              double(cold_total) / double(std::max(warm_total, 1L)));
  return 0;
}
