// Quickstart: solve for the lowest eigenpairs of a dense Hermitian matrix.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [n] [nev]
//
// The example builds a complex Hermitian matrix with a known spectrum,
// requests the nev lowest eigenpairs from the sequential ChASE driver, and
// checks the answer against the prescription.
#include <complex>
#include <cstdio>
#include <cstdlib>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"

int main(int argc, char** argv) {
  using namespace chase;
  using T = std::complex<double>;

  const la::Index n = argc > 1 ? std::atoll(argv[1]) : 400;
  const la::Index nev = argc > 2 ? std::atoll(argv[2]) : 12;

  // A dense Hermitian matrix with eigenvalues 0, 1/(n-1), ..., 1 — in a real
  // application this would be your Hamiltonian.
  auto eigenvalues = gen::uniform_spectrum<double>(n, 0.0, 1.0);
  la::Matrix<T> h = gen::hermitian_with_spectrum<T>(eigenvalues, /*seed=*/42);

  // Configure ChASE: nev wanted pairs, nex extra search directions (the
  // paper suggests 10-40% of nev), residual tolerance.
  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = std::max<la::Index>(nev / 3, 4);
  cfg.tol = 1e-10;

  core::ChaseResult<T> result = core::solve_sequential<T>(h.cview(), cfg);

  std::printf("ChASE %s after %d iterations, %ld MatVecs\n",
              result.converged ? "converged" : "did NOT converge",
              result.iterations, result.matvecs);
  std::printf("spectral bounds: mu_1=%.4f  mu_ne=%.4f  b_sup=%.4f\n",
              result.bounds.mu_1, result.bounds.mu_ne, result.bounds.b_sup);
  std::printf("%4s  %14s  %14s  %10s\n", "i", "computed", "exact", "error");
  for (la::Index j = 0; j < nev; ++j) {
    std::printf("%4lld  %14.10f  %14.10f  %10.2e\n", (long long)j,
                result.eigenvalues[std::size_t(j)],
                eigenvalues[std::size_t(j)],
                std::abs(result.eigenvalues[std::size_t(j)] -
                         eigenvalues[std::size_t(j)]));
  }
  // The eigenvectors are in result.eigenvectors (n x nev, column j pairs
  // with eigenvalue j).
  return result.converged ? 0 : 1;
}
