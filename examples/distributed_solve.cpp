// Distributed solve on a 2D process grid — the full Algorithm 2 pipeline.
//
// Demonstrates the cluster-facing API: an SPMD Team stands in for MPI, the
// Hermitian matrix is distributed block-wise on a square grid, and the
// solver runs with either the STD (host-staged MPI) or NCCL (device-direct)
// communication backend. The per-kernel cost decomposition recorded by the
// trackers — computation / communication / data movement for Filter, QR,
// Rayleigh-Ritz and Residuals — is printed for both backends, the same
// instrumentation the Figure 2 experiment uses.
#include <complex>
#include <cstdio>

#include "core/chase.hpp"
#include "gen/spectrum.hpp"
#include "perf/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace chase;
  using T = std::complex<double>;

  const la::Index n = argc > 1 ? std::atoll(argv[1]) : 512;
  const int p = 2;  // 2x2 grid, "as square as possible" (Section 2.2)

  auto h_full = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 17), 17);

  core::ChaseConfig cfg;
  cfg.nev = 16;
  cfg.nex = 8;
  cfg.tol = 1e-10;

  for (perf::Backend backend :
       {perf::Backend::kStdGpu, perf::Backend::kNcclGpu}) {
    std::vector<perf::Tracker> trackers(std::size_t(p) * std::size_t(p));
    core::ChaseResult<T> result;

    comm::Team team(p * p, backend);
    team.run(
        [&](comm::Communicator& world) {
          comm::Grid2d grid(world, p, p);
          auto map = dist::IndexMap::block(n, p);
          dist::DistHermitianMatrix<T> hd(grid, map, map);
          hd.fill_from_global(h_full.cview());

          auto r = core::solve(hd, cfg);

          // The eigenvectors come back distributed (local C-layout rows);
          // assemble them only if the application needs the full block.
          la::Matrix<T> full(n, cfg.nev);
          dist::gather_rows(grid.col_comm(), map,
                            r.eigenvectors.view().as_const(), full.view());
          if (world.rank() == 0) result = std::move(r);
        },
        &trackers);

    std::printf("backend %-4s: converged=%s iters=%d matvecs=%ld  "
                "lambda_0=%.8f\n",
                std::string(backend_name(backend)).c_str(),
                result.converged ? "yes" : "no", result.iterations,
                result.matvecs, result.eigenvalues.front());

    // Per-kernel event summary from rank 0 (the Figure 2 decomposition).
    const auto& t = trackers[0];
    std::printf("  %-8s %12s %14s %14s\n", "kernel", "collectives",
                "coll bytes", "staging bytes");
    for (perf::Region r : {perf::Region::kFilter, perf::Region::kQr,
                           perf::Region::kRayleighRitz,
                           perf::Region::kResidual}) {
      const auto& c = t.costs(r);
      std::printf("  %-8s %12zu %14zu %14zu\n",
                  std::string(perf::region_name(r)).c_str(), c.coll_count,
                  c.coll_bytes, c.memcpy_bytes);
    }
  }
  std::printf("\nNCCL eliminates every staging byte while the numerics are "
              "bitwise identical\n(Section 3.3).\n");
  return 0;
}
