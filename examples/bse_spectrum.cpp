// Optical spectrum from a Bethe-Salpeter-like eigenproblem.
//
// The BSE problems of Table 1 (In2O3, HfO2) ask for the ~100 lowest
// excitation energies of a large dense Hermitian matrix; the eigenvalues
// give the exciton energies and the eigenvector weights the oscillator
// strengths that shape the optical absorption spectrum. This example builds
// a BSE-like matrix, extracts the bottom of its spectrum with ChASE, and
// prints a toy absorption spectrum (Lorentzian-broadened oscillator
// strengths against a reference dipole vector).
#include <cmath>
#include <complex>
#include <cstdio>

#include "common/rng.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/blas2.hpp"

int main() {
  using namespace chase;
  using T = std::complex<double>;

  const la::Index n = 800;
  const la::Index nev = 24, nex = 8;

  auto h = gen::hermitian_with_spectrum<T>(
      gen::bse_like_spectrum<double>(n, 11), 11);

  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = nex;
  cfg.tol = 1e-9;
  auto r = core::solve_sequential<T>(h.cview(), cfg);
  std::printf("BSE-like eigenproblem N=%lld: %s in %d iterations "
              "(%ld MatVecs)\n",
              (long long)n, r.converged ? "converged" : "NOT converged",
              r.iterations, r.matvecs);

  // Toy dipole vector; oscillator strength of exciton k is |<d|psi_k>|^2.
  Rng rng(13);
  std::vector<T> dipole(static_cast<std::size_t>(n));
  for (auto& d : dipole) d = rng.gaussian<T>();
  std::vector<double> strength(static_cast<std::size_t>(nev));
  for (la::Index k = 0; k < nev; ++k) {
    const T overlap = la::dotc(n, dipole.data(), r.eigenvectors.col(k));
    strength[std::size_t(k)] = std::norm(std::complex<double>(overlap));
  }

  std::printf("\nlowest excitations (energy, oscillator strength):\n");
  for (la::Index k = 0; k < std::min<la::Index>(nev, 10); ++k) {
    std::printf("  E_%-2lld = %8.5f   f = %8.3f\n", (long long)k,
                r.eigenvalues[std::size_t(k)], strength[std::size_t(k)]);
  }

  // Lorentzian-broadened absorption on a coarse energy grid, rendered as an
  // ASCII profile.
  std::printf("\nabsorption spectrum (Lorentzian broadening 0.05):\n");
  const double gamma = 0.05;
  const double e0 = r.eigenvalues.front() - 0.2;
  const double e1 = r.eigenvalues.back() + 0.2;
  double maxval = 0;
  std::vector<double> grid(48);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const double e = e0 + (e1 - e0) * double(g) / double(grid.size() - 1);
    double acc = 0;
    for (la::Index k = 0; k < nev; ++k) {
      const double d = e - r.eigenvalues[std::size_t(k)];
      acc += strength[std::size_t(k)] * gamma / (d * d + gamma * gamma);
    }
    grid[g] = acc;
    maxval = std::max(maxval, acc);
  }
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const double e = e0 + (e1 - e0) * double(g) / double(grid.size() - 1);
    const int bars = int(std::lround(50.0 * grid[g] / maxval));
    std::printf("  %7.4f |", e);
    for (int b = 0; b < bars; ++b) std::putchar('#');
    std::putchar('\n');
  }
  return r.converged ? 0 : 1;
}
