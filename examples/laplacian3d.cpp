// Matrix-free solve: lowest modes of a 3D Laplacian that is never assembled.
//
// ChASE is "a full-fledged numerical eigensolver that can also be used
// outside the electronic structure domain" (Section 2); this example feeds
// the solver a 7-point finite-difference Laplacian through the matrix-free
// operator interface — O(1) matrix storage for an N = nx*ny*nz problem —
// and verifies the computed modes against the closed-form eigenvalues.
#include <cstdio>
#include <cstdlib>

#include "core/operator.hpp"
#include "core/sequential.hpp"

int main(int argc, char** argv) {
  using namespace chase;
  using T = double;

  const la::Index nx = argc > 1 ? std::atoll(argv[1]) : 12;
  const la::Index ny = argc > 2 ? std::atoll(argv[2]) : 12;
  const la::Index nz = argc > 3 ? std::atoll(argv[3]) : 10;
  core::Laplacian3D<T> lap{nx, ny, nz};
  const la::Index n = lap.size();
  std::printf("3D Dirichlet Laplacian, %lld x %lld x %lld grid "
              "(N = %lld, matrix never assembled: %d bytes of operator "
              "state)\n",
              (long long)nx, (long long)ny, (long long)nz, (long long)n,
              int(sizeof(lap)));

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(n, 1);
  core::MatrixFreeOperator<T, core::Laplacian3D<T>> hop(grid, map, map, lap);

  core::ChaseConfig cfg;
  cfg.nev = 12;
  cfg.nex = 8;
  cfg.tol = 1e-10;
  auto r = core::solve(hop, cfg);
  std::printf("%s in %d iterations (%ld MatVecs)\n",
              r.converged ? "converged" : "NOT converged", r.iterations,
              r.matvecs);

  auto exact = lap.exact_eigenvalues();
  std::printf("%4s %16s %16s %10s\n", "mode", "computed", "exact", "error");
  for (la::Index j = 0; j < cfg.nev; ++j) {
    std::printf("%4lld %16.12f %16.12f %10.2e\n", (long long)j,
                r.eigenvalues[std::size_t(j)], exact[std::size_t(j)],
                std::abs(r.eigenvalues[std::size_t(j)] -
                         exact[std::size_t(j)]));
  }
  return r.converged ? 0 : 1;
}
