// Spectrum exploration before the solve: Density-of-States estimation.
//
// Before committing to a (nev, nex) pair, domain users often need to know
// how many states live below an energy of interest. ChASE's Lanczos/DoS
// machinery answers that without any factorization: a handful of Lanczos
// runs estimate the spectral density, its quantiles, and the spectral
// bounds. This example prints an ASCII DoS histogram for a DFT-like
// Hamiltonian, picks nev to cover an energy window, and verifies the pick
// with a real solve.
#include <complex>
#include <cstdio>

#include "core/dos.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"

int main() {
  using namespace chase;
  using T = std::complex<double>;

  const la::Index n = 600;
  auto h_full = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 29), 29);

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  dist::DistHermitianMatrix<T> h(grid, dist::IndexMap::block(n, 1),
                                 dist::IndexMap::block(n, 1));
  h.fill_from_global(h_full.cview());

  // 1) Estimate the DoS with a few Lanczos runs (O(steps) MatVecs each).
  auto dos = core::estimate_dos(h, /*steps=*/40, /*nvec=*/8, /*seed=*/3);
  std::printf("spectral bounds: [%.3f, %.3f]\n", dos.lower, dos.upper);

  const int bins = 32;
  auto hist = core::dos_histogram(dos, bins);
  std::printf("\nestimated density of states (%d Lanczos runs):\n", 8);
  double maxmass = 0;
  for (double m : hist) maxmass = std::max(maxmass, m);
  for (int b = 0; b < bins; ++b) {
    const double lo = dos.lower + (dos.upper - dos.lower) * b / bins;
    const int bars =
        int(std::lround(46.0 * hist[std::size_t(b)] / maxmass));
    std::printf("  %8.3f |", lo);
    for (int i = 0; i < bars; ++i) std::putchar('#');
    std::putchar('\n');
  }

  // 2) How many states below the "Fermi-like" energy E = 0?
  const double window = 0.0;
  const double count = dos.cumulative_count(window, n);
  std::printf("\nestimated states below E=%.1f: %.1f of %lld\n", window,
              count, (long long)n);

  // 3) Solve for that many states (plus a safety margin) and report how
  //    good the estimate was.
  core::ChaseConfig cfg;
  cfg.nev = la::Index(count * 1.1) + 2;
  cfg.nex = std::max<la::Index>(cfg.nev / 4, 4);
  cfg.tol = 1e-9;
  auto r = core::solve(h, cfg);
  la::Index actual = 0;
  while (actual < cfg.nev && r.eigenvalues[std::size_t(actual)] < window) {
    ++actual;
  }
  std::printf("solved nev=%lld (%s, %d iterations): actual states below "
              "E=%.1f found: %lld\n",
              (long long)cfg.nev, r.converged ? "converged" : "NOT converged",
              r.iterations, window, (long long)actual);
  std::printf("DoS estimate error: %.1f states (%.1f%%)\n",
              std::abs(count - double(actual)),
              100.0 * std::abs(count - double(actual)) /
                  std::max(double(actual), 1.0));
  return 0;
}
