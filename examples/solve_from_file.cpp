// Command-line solver: read a Hermitian matrix from disk, compute its lowest
// eigenpairs, optionally write the eigenvectors back.
//
// Usage:
//   solve_from_file gen <path> <n>            # create a demo matrix file
//   solve_from_file solve <path> <nev> [nex] [tol] [--evec out.mat]
//
// Accepted inputs: the chase binary container (.mat, see la/io.hpp) and
// dense MatrixMarket (.mtx), complex double either way.
#include <complex>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/io.hpp"

namespace {

using namespace chase;
using T = std::complex<double>;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

la::Matrix<T> load(const std::string& path) {
  return ends_with(path, ".mtx") ? la::load_matrix_market<T>(path)
                                 : la::load_binary<T>(path);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  solve_from_file gen <path> <n>\n"
               "  solve_from_file solve <path> <nev> [nex] [tol] "
               "[--evec out.mat]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const std::string path = argv[2];

  if (mode == "gen") {
    if (argc < 4) return usage();
    const la::Index n = std::atoll(argv[3]);
    auto h = gen::hermitian_with_spectrum<T>(
        gen::dft_like_spectrum<double>(n, 2026), 2026);
    if (ends_with(path, ".mtx")) {
      la::save_matrix_market(h.cview(), path, /*hermitian=*/true);
    } else {
      la::save_binary(h.cview(), path);
    }
    std::printf("wrote %lld x %lld Hermitian matrix to %s\n", (long long)n,
                (long long)n, path.c_str());
    return 0;
  }

  if (mode != "solve" || argc < 4) return usage();
  core::ChaseConfig cfg;
  cfg.nev = std::atoll(argv[3]);
  cfg.nex = argc > 4 && argv[4][0] != '-' ? std::atoll(argv[4])
                                          : std::max<la::Index>(cfg.nev / 4, 4);
  cfg.tol = 1e-10;
  std::string evec_out;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--evec") == 0 && i + 1 < argc) {
      evec_out = argv[i + 1];
    } else if (argv[i][0] != '-' && i == 5) {
      cfg.tol = std::atof(argv[i]);
    }
  }

  la::Matrix<T> h;
  try {
    h = load(path);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (h.rows() != h.cols()) {
    std::fprintf(stderr, "error: %s is not square\n", path.c_str());
    return 1;
  }
  std::printf("loaded %lld x %lld matrix from %s\n", (long long)h.rows(),
              (long long)h.cols(), path.c_str());

  auto r = core::solve_sequential<T>(h.cview(), cfg);
  std::printf("%s after %d iterations (%ld MatVecs)\n",
              r.converged ? "converged" : "NOT converged", r.iterations,
              r.matvecs);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    std::printf("  lambda[%3lld] = %.12f\n", (long long)j,
                r.eigenvalues[std::size_t(j)]);
  }
  if (!evec_out.empty()) {
    la::save_binary(r.eigenvectors.view().as_const(), evec_out);
    std::printf("eigenvectors written to %s\n", evec_out.c_str());
  }
  return r.converged ? 0 : 1;
}
