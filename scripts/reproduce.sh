#!/usr/bin/env bash
# End-to-end reproduction driver: configure, build, run the full test suite,
# every paper experiment and every ablation, collecting outputs under
# results/.
#
#   scripts/reproduce.sh [build-dir]
#
# Environment:
#   CHASE_BENCH_QUICK=1   shrink the real-execution benches (smoke run)
set -euo pipefail

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

mkdir -p results
ctest --test-dir "$BUILD" 2>&1 | tee results/test_output.txt

for b in "$BUILD"/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $b ====="
    CHASE_BENCH_CSV_DIR="$ROOT/results" "$b"
  fi
done 2>&1 | tee results/bench_output.txt

echo
echo "Done. Text reports: results/{test,bench}_output.txt;"
echo "CSV series: results/*.csv; paper comparison: EXPERIMENTS.md."
