#!/usr/bin/env bash
# Build the tsan preset and run the thread-per-rank comm, fault-tolerance,
# collective-engine, solver-engine, factorization, checkpoint and solver-
# service suites (ctest labels: comm, fault, coll, engine, factor, ckpt, hier,
# svc, tune) under ThreadSanitizer. The in-process SPMD runtime (comm::Team, the
# poisoned-barrier protocol, the fault registry), the src/coll chunk
# channels, the staged solver pipeline running one rank per thread, the
# policy-dispatched factorization kernels called from those ranks, and the
# multi-tenant service (worker pool + shared metrics tracker + arena pool)
# are exactly the code a data race would corrupt silently, so these suites
# are the ones worth the ~10x tsan slowdown.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
ctest --preset tsan "$@"
