#!/usr/bin/env python3
"""Check the kernel-engine invariants recorded in results/bench_kernels.json.

Run the sweep first (from the repo root, so the default output path lands in
results/):

    ./build/bench/micro_kernels results/bench_kernels.json
    python3 scripts/compare_bench.py [results/bench_kernels.json]

Hard failures (exit 1):
  * the micro policy is slower than the seed naive path at n=512 for any
    type — the engine must never lose to the reference triple loop;
  * micro is below 2x naive on double / complex<double> GEMM at n=1024 —
    the engine's headline requirement;
  * hemm falls below 0.9x gemm anywhere — the Hermitian engine must stay in
    the same performance class as the plain engine.

Informational: the hemm-vs-gemm median ratios (expected ~1.0 for double,
>= 1.0 for complex<double> where the packed-panel replay pays off).
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/bench_kernels.json"
    with open(path) as f:
        data = json.load(f)

    rate = {}
    for row in data["gemm"]:
        rate[(row["kernel"], row["type"], row["n"])] = row["gflops"]

    failures = []
    types = sorted({t for (_, t, _) in rate})

    for t in types:
        naive = rate.get(("naive", t, 512))
        micro = rate.get(("micro", t, 512))
        if naive is None or micro is None:
            failures.append(f"missing naive/micro rows for {t} at n=512")
            continue
        print(f"n=512  {t:16s} micro {micro:8.2f} vs naive {naive:6.2f} "
              f"({micro / naive:6.1f}x)")
        if micro <= naive:
            failures.append(
                f"micro ({micro:.2f}) slower than naive ({naive:.2f}) "
                f"for {t} at n=512")

    for t in ("double", "complex<double>"):
        naive = rate.get(("naive", t, 1024))
        micro = rate.get(("micro", t, 1024))
        if naive is None or micro is None:
            failures.append(f"missing naive/micro rows for {t} at n=1024")
            continue
        speedup = micro / naive
        print(f"n=1024 {t:16s} micro {micro:8.2f} vs naive {naive:6.2f} "
              f"({speedup:6.1f}x)")
        if speedup < 2.0:
            failures.append(
                f"micro only {speedup:.2f}x naive for {t} at n=1024 "
                "(need >= 2x)")

    for row in data["hemm_vs_gemm"]:
        r = row["median_ratio"]
        print(f"hemm/gemm {row['type']:16s} n={row['n']:<5d} "
              f"gemm {row['gemm_gflops']:7.2f}  hemm {row['hemm_gflops']:7.2f}"
              f"  median ratio {r:.3f}")
        if r < 0.9:
            failures.append(
                f"hemm at {r:.3f}x gemm for {row['type']} n={row['n']} "
                "(must stay >= 0.9x)")

    if failures:
        print("\nFAIL:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("\nOK: all kernel-engine invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
