#!/usr/bin/env python3
"""Check the recorded benchmark invariants.

Run the sweeps first (from the repo root, so the default output paths land
in results/):

    ./build/bench/micro_kernels results/bench_kernels.json
    ./build/bench/micro_engine  results/bench_engine.json
    python3 scripts/compare_bench.py [results/*.json ...]

The checker dispatches on the JSON shape, so any mix of result files can be
passed; with no arguments it checks every default result file that exists.
`--only <name>` restricts the run to one bench — the name maps to
results/bench_<name>.json (e.g. `--only mixed`), or pass a .json path.

Mixed-precision invariants (results/bench_mixed.json, hard failures):
  * the fp32 filter (including demote/promote boundary copies) below 1.5x
    the fp64 filter at n=1024;
  * the 2x2 filter collective payload above 0.55x of fp64 (pure fp32
    applies move exactly half the bytes);
  * CHASE_PRECISION=double results not bitwise identical across an
    intervening mixed solve, or the mixed solve's eigenvalues drifting
    more than 1e-6 from the fp64 solve's;
  * the mixed solve never filtering a column in fp32.

Kernel-engine invariants (results/bench_kernels.json, hard failures):
  * the micro policy is slower than the seed naive path at n=512 for any
    type — the engine must never lose to the reference triple loop;
  * micro is below 2x naive on double / complex<double> GEMM at n=1024 —
    the engine's headline requirement;
  * hemm falls below 0.9x gemm anywhere — the Hermitian engine must stay in
    the same performance class as the plain engine.

Solver-engine invariants (results/bench_engine.json, hard failures):
  * the staged pipeline is more than 5% slower than the frozen seed driver
    on any case (scheme x grid x type) — the layered refactor must not tax
    the hot path;
  * any steady-state workspace growth ("workspace.steady_growth" > 0) or
    any per-iteration arena allocation — the zero-allocation contract.

Factorization-engine invariants (results/bench_factor.json, hard failures):
  * blocked below 2x naive at n=1024 for TRSM/POTRF/HERK on double or
    complex<double> — the GEMM lowering must actually pay;
  * blocked slower than naive at n=1024 for HETRD (informational at other
    sizes);
  * any end-to-end consumer (CholeskyQR2, Rayleigh-Ritz HEEVD) regressing
    under the blocked policy (ratio blocked/naive > 1.0).

Checkpoint invariants (results/bench_checkpoint.json, hard failures):
  * snapshot capture exceeding 5% of the filter time per solve — the
    fault-tolerance machinery must stay a footnote next to the kernel it
    protects.

Service invariants (results/bench_service.json, hard failures):
  * any steady-state arena growth — the size-bucketed pool must give the
    whole fleet zero steady-state allocation;
  * mean batch occupancy below 1.5 on the submit-all run — the batching
    scheduler must actually coalesce same-size jobs;
  * the oversubscription segment accepting more than the bounded queue
    depth, or rejecting nothing — admission control must reject typed;
  * batched submission below 1.5x serial one-at-a-time jobs/sec when the
    run had parallel hardware (workers > 1 and cpus > 1). On a single-CPU
    host batching cannot beat serial by running jobs concurrently and every
    job's arithmetic is bitwise-pinned to its solo run, so the gate there
    is "batching must not lose" (>= 0.95x, the recorded cpu count makes
    the mode auditable).

Hierarchy invariants (results/bench_hierarchy.json, hard failures):
  * hierarchical allreduce below 1.3x the flat ring on the emulated
    2-node x 4-rank slow-inter topology — the two-level routing must beat
    dragging the payload across the boundary twice;
  * CollPlan replay below 1.1x per-call dispatch — registering once and
    replaying must actually save the per-iteration planning work;
  * any hierarchical routine not bitwise-identical to the naive reference;
  * CHASE_COLL_ALGO=auto disagreeing with the per-link cost model about
    when the hierarchy wins.

Autotuner invariants (results/bench_tune.json, hard failures):
  * the tuned end-to-end solve above 1.05x the best fixed single-policy
    configuration — per-class dispatch tables must not tax the hot path;
  * the worst fixed configuration below 1.3x the tuned solve — the tuner
    must actually protect the solve from a bad global policy choice;
  * replay not deterministic — derive_selections over the persisted
    measurement log must reproduce the persisted tables bit-for-bit.

`--schema <profile.json>` instead validates a persisted machine profile
(schema tag, version, fingerprint and table shapes) without benchmarking.

Informational: the hemm-vs-gemm median ratios, staged-vs-seed ratios below
parity (the staged engine being faster is fine), and the wall-clock cost of
arming the ABFT checksummed collectives.
"""

import json
import os
import sys


def check_kernels(data: dict, failures: list) -> None:
    rate = {}
    for row in data["gemm"]:
        rate[(row["kernel"], row["type"], row["n"])] = row["gflops"]

    types = sorted({t for (_, t, _) in rate})

    for t in types:
        naive = rate.get(("naive", t, 512))
        micro = rate.get(("micro", t, 512))
        if naive is None or micro is None:
            failures.append(f"missing naive/micro rows for {t} at n=512")
            continue
        print(f"n=512  {t:16s} micro {micro:8.2f} vs naive {naive:6.2f} "
              f"({micro / naive:6.1f}x)")
        if micro <= naive:
            failures.append(
                f"micro ({micro:.2f}) slower than naive ({naive:.2f}) "
                f"for {t} at n=512")

    for t in ("double", "complex<double>"):
        naive = rate.get(("naive", t, 1024))
        micro = rate.get(("micro", t, 1024))
        if naive is None or micro is None:
            failures.append(f"missing naive/micro rows for {t} at n=1024")
            continue
        speedup = micro / naive
        print(f"n=1024 {t:16s} micro {micro:8.2f} vs naive {naive:6.2f} "
              f"({speedup:6.1f}x)")
        if speedup < 2.0:
            failures.append(
                f"micro only {speedup:.2f}x naive for {t} at n=1024 "
                "(need >= 2x)")

    for row in data["hemm_vs_gemm"]:
        r = row["median_ratio"]
        print(f"hemm/gemm {row['type']:16s} n={row['n']:<5d} "
              f"gemm {row['gemm_gflops']:7.2f}  hemm {row['hemm_gflops']:7.2f}"
              f"  median ratio {r:.3f}")
        if r < 0.9:
            failures.append(
                f"hemm at {r:.3f}x gemm for {row['type']} n={row['n']} "
                "(must stay >= 0.9x)")


def check_engine(data: dict, failures: list) -> None:
    for c in data["cases"]:
        tag = f"{c['scheme']:5s} {c['grid']:5s} n={c['n']}"
        print(f"engine {tag}  staged {c['staged_seconds']:.4f}s  "
              f"seed {c['seed_seconds']:.4f}s  ratio {c['ratio']:.3f}  "
              f"growth {c['steady_growth']:.0f}  "
              f"allocs {c['workspace_allocs']}")
        if c["ratio"] > 1.05:
            failures.append(
                f"staged engine {c['ratio']:.3f}x seed driver for {tag} "
                "(parity budget is 1.05x)")
        if c["steady_growth"] != 0:
            failures.append(
                f"steady-state workspace growth ({c['steady_growth']:.0f} "
                f"events) for {tag} — the arena must not grow after setup")
        if c["workspace_allocs"] != 0:
            failures.append(
                f"{c['workspace_allocs']} per-iteration arena allocations "
                f"for {tag} — iterations must be allocation-free")


def check_factor(data: dict, failures: list) -> None:
    rate = {}
    for row in data["factor"]:
        rate[(row["op"], row["kernel"], row["type"], row["n"])] = \
            row["gflops"]

    gated_ops = ("trsm", "potrf", "herk")
    types = ("double", "complex<double>")
    sizes = sorted({n for (_, _, _, n) in rate})
    for op in gated_ops + ("hetrd",):
        for t in types:
            for n in sizes:
                naive = rate.get((op, "naive", t, n))
                blocked = rate.get((op, "blocked", t, n))
                if naive is None or blocked is None:
                    continue
                speedup = blocked / naive
                print(f"{op:6s} {t:16s} n={n:<5d} blocked {blocked:8.2f} "
                      f"vs naive {naive:7.2f} ({speedup:5.1f}x)")
                if op in gated_ops and n == 1024 and speedup < 2.0:
                    failures.append(
                        f"blocked {op} only {speedup:.2f}x naive for {t} "
                        f"at n={n} (need >= 2x)")
                if op == "hetrd" and n >= 512 and speedup < 1.0:
                    failures.append(
                        f"blocked hetrd {speedup:.2f}x naive for {t} at "
                        f"n={n} (must not lose to the seed kernel)")
    for op in gated_ops:
        for t in types:
            if (op, "naive", t, 1024) not in rate:
                failures.append(
                    f"missing naive/blocked rows for {op} {t} at n=1024")

    for row in data["end_to_end"]:
        r = row["ratio"]
        print(f"end-to-end {row['case']:9s} {row['type']:16s} "
              f"m={row['m']:<6d} n={row['n']:<5d} naive "
              f"{row['naive_seconds']:.4f}s  blocked "
              f"{row['blocked_seconds']:.4f}s  ratio {r:.3f}")
        if r > 1.0:
            failures.append(
                f"{row['case']} ({row['type']}) regressed to {r:.3f}x naive "
                "under the blocked policy (must be <= 1.0x)")


def check_checkpoint(data: dict, failures: list) -> None:
    c = data["checkpoint"]
    print(f"checkpoint n={c['n']} ne={c['ne']} iterations={c['iterations']} "
          f"captures={c['captures']:.0f} "
          f"snapshot {c['snapshot_bytes']:.0f} B")
    print(f"  capture {c['snapshot_seconds']:.4f}s  "
          f"filter {c['filter_seconds']:.4f}s  "
          f"overhead ratio {c['overhead_ratio']:.4f}  "
          f"decode {c['resume_decode_seconds']:.4f}s")
    if c["overhead_ratio"] > 0.05:
        failures.append(
            f"checkpoint capture is {c['overhead_ratio']:.3f}x the filter "
            "time (budget is 0.05x)")
    if c["captures"] <= 0:
        failures.append("checkpointed solve recorded no captures")
    a = c.get("abft")
    if a:
        print(f"  abft (n={a['n']}): off {a['off_seconds']:.4f}s  "
              f"on {a['on_seconds']:.4f}s  ratio {a['ratio']:.3f} "
              "(informational)")


def check_service(data: dict, failures: list) -> None:
    s = data["service"]
    print(f"service {s['jobs']} jobs, {s['workers']} workers, "
          f"{s['cpus']} cpus, max_batch {s['max_batch']}")
    print(f"  standalone {s['standalone_jobs_per_sec']:8.1f} jobs/s  "
          f"serial {s['serial_jobs_per_sec']:8.1f}  "
          f"batched {s['batched_jobs_per_sec']:8.1f}  "
          f"(batched/serial {s['speedup_vs_serial']:.2f}x, "
          f"/standalone {s['speedup_vs_standalone']:.2f}x)")
    print(f"  latency p50 {s['p50_ms']:.2f}ms p99 {s['p99_ms']:.2f}ms  "
          f"occupancy {s['mean_batch_occupancy']:.2f}  "
          f"pool {s['pool_entries']} arenas "
          f"(high-water {s['pool_high_water']})  "
          f"steady growth {s['steady_arena_growth']}")
    print(f"  oversubscription: {s['oversub_submitted']} submitted, "
          f"{s['oversub_accepted']} accepted, "
          f"{s['oversub_rejected']} rejected typed")

    if s["steady_arena_growth"] != 0:
        failures.append(
            f"warm arenas grew by {s['steady_arena_growth']} alloc events "
            "— the pooled fleet must run at zero steady-state allocation")
    if s["mean_batch_occupancy"] < 1.5:
        failures.append(
            f"mean batch occupancy {s['mean_batch_occupancy']:.2f} on the "
            "submit-all run — same-size jobs were not coalesced")
    if s["oversub_rejected"] <= 0 or \
            s["oversub_accepted"] + s["oversub_rejected"] != \
            s["oversub_submitted"]:
        failures.append(
            "oversubscribed queue did not reject the overflow typed "
            f"({s['oversub_accepted']} accepted + {s['oversub_rejected']} "
            f"rejected != {s['oversub_submitted']} submitted)")
    parallel_host = s["workers"] > 1 and s["cpus"] > 1
    required = 1.5 if parallel_host else 0.95
    if s["speedup_vs_serial"] < required:
        failures.append(
            f"batched submission only {s['speedup_vs_serial']:.2f}x serial "
            f"jobs/sec (need >= {required:.2f}x "
            f"{'on parallel hardware' if parallel_host else 'even single-cpu'}"
            ")")
    if not parallel_host:
        print(f"  note: single-cpu host ({s['cpus']} cpu) — the 1.5x "
              "batching gate needs parallel workers; gating at 0.95x "
              "(batching must not lose)")


def check_hierarchy(data: dict, failures: list) -> None:
    print(f"hierarchy {data['topology']} ({data['ranks']} ranks, "
          f"{data['allreduce_bytes']} B allreduce)")
    print(f"  flat ring {data['ring_seconds_per_op'] * 1e3:8.3f} ms  "
          f"hier {data['hier_seconds_per_op'] * 1e3:8.3f} ms  "
          f"speedup {data['hierarchy_speedup']:.2f}x")
    print(f"  per-call {data['percall_seconds_per_op'] * 1e6:8.1f} us  "
          f"replay {data['replay_seconds_per_op'] * 1e6:8.1f} us  "
          f"speedup {data['plan_replay_speedup']:.2f}x")
    print(f"  bitwise identical: {data['bitwise_identical']}  "
          f"auto matches model: {data['auto_matches_model']}")
    if data["hierarchy_speedup"] < 1.3:
        failures.append(
            f"hierarchical allreduce only {data['hierarchy_speedup']:.2f}x "
            "the flat ring on the emulated slow-inter topology "
            "(need >= 1.3x)")
    if data["plan_replay_speedup"] < 1.1:
        failures.append(
            f"plan replay only {data['plan_replay_speedup']:.2f}x per-call "
            "dispatch (need >= 1.1x)")
    if not data["bitwise_identical"]:
        failures.append(
            "hierarchical routines are not bitwise-identical to the naive "
            "reference")
    if not data["auto_matches_model"]:
        failures.append(
            "CHASE_COLL_ALGO=auto disagrees with the per-link cost model "
            "about when the hierarchy wins")


def check_tune(data: dict, failures: list) -> None:
    t = data["tune"]
    print(f"tune n={t['n']} nev={t['nev']} nex={t['nex']} "
          f"(best of {t['reps']}, {t['measurements']} probe measurements)")
    for c in t["configs"]:
        print(f"  fixed gemm={c['gemm']:8s} factor={c['factor']:8s} "
              f"{c['seconds']:10.4f} s")
    print(f"  tuned {t['tuned_seconds']:.4f}s  "
          f"best fixed {t['best_fixed_seconds']:.4f}s  "
          f"worst fixed {t['worst_fixed_seconds']:.4f}s")
    print(f"  tuned/best {t['tuned_vs_best']:.3f}  "
          f"worst/tuned {t['worst_vs_tuned']:.2f}x  "
          f"replay deterministic: {t['replay_deterministic']}")
    if t["tuned_vs_best"] > 1.05:
        failures.append(
            f"tuned solve is {t['tuned_vs_best']:.3f}x the best fixed "
            "policy (budget is 1.05x — dispatch tables must not tax the "
            "hot path)")
    if t["worst_vs_tuned"] < 1.3:
        failures.append(
            f"worst fixed policy only {t['worst_vs_tuned']:.2f}x the tuned "
            "solve (need >= 1.3x — tuning must beat a bad global policy)")
    if not t["replay_deterministic"]:
        failures.append(
            "profile replay is not deterministic — derive_selections over "
            "the persisted measurement log diverged from the stored tables")


PROFILE_SCHEMA = "chase.machine_profile"
PROFILE_VERSION = 1


def check_profile_schema(path: str) -> int:
    """Validate a persisted machine profile; returns a process exit code."""
    problems = []
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable or not JSON: {e}")
        return 1
    if data.get("schema") != PROFILE_SCHEMA:
        problems.append(f"schema tag is {data.get('schema')!r}, "
                        f"expected {PROFILE_SCHEMA!r}")
    if data.get("version") != PROFILE_VERSION:
        problems.append(f"version is {data.get('version')!r}, "
                        f"expected {PROFILE_VERSION}")
    fp = data.get("fingerprint")
    if not isinstance(fp, dict) or not fp.get("host") or \
            not isinstance(fp.get("threads"), int) or fp["threads"] <= 0:
        problems.append("fingerprint must carry a host and a positive "
                        "thread count")
    ms = data.get("measurements")
    if not isinstance(ms, list):
        problems.append("measurements must be an array")
    else:
        for i, m in enumerate(ms):
            if not isinstance(m, dict) or not m.get("name") or \
                    not isinstance(m.get("value"), (int, float)):
                problems.append(f"measurement #{i} lacks a name/value")
                break
    tables = data.get("tables")
    if not isinstance(tables, dict):
        problems.append("tables must be an object")
    else:
        for key in ("gemm_kernel", "factor_kernel", "coll_algo"):
            if not isinstance(tables.get(key), list):
                problems.append(f"tables.{key} must be an array")
        chunk = tables.get("chunk_bytes")
        if not isinstance(chunk, (int, float)) or chunk < 0:
            problems.append("tables.chunk_bytes must be a non-negative "
                            "number")
        if not isinstance(tables.get("rates"), dict):
            problems.append("tables.rates must be an object")
    if problems:
        print(f"{path}: invalid machine profile:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"{path}: valid {PROFILE_SCHEMA} v{PROFILE_VERSION} profile "
          f"({len(ms)} measurements)")
    return 0


DEFAULT_RESULTS = ("results/bench_kernels.json",
                   "results/bench_engine.json",
                   "results/bench_factor.json",
                   "results/bench_checkpoint.json",
                   "results/bench_service.json",
                   "results/bench_mixed.json",
                   "results/bench_hierarchy.json",
                   "results/bench_tune.json")


def check_mixed(data: dict, failures: list) -> None:
    m = data["mixed"]
    print(f"mixed filter n={m['n']} cols={m['cols']} deg={m['degree']}: "
          f"fp64 {m['fp64_seconds']:.4f}s  fp32 {m['fp32_seconds']:.4f}s  "
          f"speedup {m['speedup']:.2f}x")
    print(f"  2x2 filter coll bytes: fp64 {m['coll_bytes_fp64']:.0f}  "
          f"fp32 {m['coll_bytes_fp32']:.0f}  ratio {m['coll_ratio']:.3f}")
    print(f"  solve n={m['solve_n']}: max eig diff {m['max_eig_diff']:.2e} "
          f"(tol {m['tol']:.0e})  fp32 cols {m['fp32_cols']:.0f}  "
          f"fp64 cols {m['fp64_cols']:.0f}  "
          f"double identical: {m['double_identical']}")
    if m["speedup"] < 1.5:
        failures.append(
            f"mixed filter only {m['speedup']:.2f}x fp64 at n={m['n']} "
            "(need >= 1.5x — low precision must actually pay)")
    if m["coll_ratio"] > 0.55:
        failures.append(
            f"fp32 filter moved {m['coll_ratio']:.3f}x the fp64 collective "
            "bytes (must be <= 0.55x — payloads must halve)")
    if not m["double_identical"]:
        failures.append(
            "CHASE_PRECISION=double results changed across an intervening "
            "mixed solve — the precision policy leaks state")
    if m["max_eig_diff"] > 1e-6:
        failures.append(
            f"mixed solve eigenvalues off by {m['max_eig_diff']:.2e} from "
            "fp64 (must converge to the same pairs)")
    if m["fp32_cols"] <= 0:
        failures.append(
            "mixed solve filtered no columns in fp32 — the low-precision "
            "path never engaged")


def main() -> int:
    args = sys.argv[1:]
    paths = []
    only = None
    i = 0
    while i < len(args):
        if args[i] == "--schema":
            if i + 1 >= len(args):
                print("--schema requires a machine-profile JSON path")
                return 1
            return check_profile_schema(args[i + 1])
        if args[i] == "--only":
            if i + 1 >= len(args):
                print("--only requires a bench name or result path")
                return 1
            only = args[i + 1]
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if only is not None:
        # Accept either a bench name ("mixed", "engine", ...) or a path.
        path = only if only.endswith(".json") else f"results/bench_{only}.json"
        if not os.path.exists(path):
            print(f"--only {only}: {path} not found (run that bench first)")
            return 1
        paths = [path]
    if not paths:
        paths = [p for p in DEFAULT_RESULTS if os.path.exists(p)]
        if not paths:
            print("no result files found (run the micro benches first)")
            return 1

    failures = []
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        print(f"== {path}")
        if "gemm" in data:
            check_kernels(data, failures)
        elif "cases" in data:
            check_engine(data, failures)
        elif "factor" in data:
            check_factor(data, failures)
        elif "checkpoint" in data:
            check_checkpoint(data, failures)
        elif "service" in data:
            check_service(data, failures)
        elif "mixed" in data:
            check_mixed(data, failures)
        elif "hierarchy_speedup" in data:
            check_hierarchy(data, failures)
        elif "tune" in data:
            check_tune(data, failures)
        else:
            failures.append(f"{path}: unrecognized result shape")
        print()

    if failures:
        print("FAIL:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("OK: all benchmark invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
