#include "la/qr_blocked.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::random_matrix;

template <typename T>
class BlockedQrTyped : public ::testing::Test {};
TYPED_TEST_SUITE(BlockedQrTyped, chase::testing::ScalarTypes);

TYPED_TEST(BlockedQrTyped, MatchesUnblockedFactorization) {
  using T = TypeParam;
  const Index m = 70, n = 23;
  auto a = random_matrix<T>(m, n, 1);
  auto a_ref = clone(a.cview());

  std::vector<T> tau_blk, tau_ref;
  geqrf_blocked(a.view(), tau_blk, /*nb=*/8);
  geqrf(a_ref.view(), tau_ref);

  // Same reflectors, same R (both follow the LAPACK conventions).
  const RealType<T> tol = chase::testing::tol<T>(RealType<T>(5000));
  EXPECT_LE(max_abs_diff(a.cview(), a_ref.cview()), tol);
  for (Index j = 0; j < n; ++j) {
    EXPECT_LE(abs_value(T(tau_blk[std::size_t(j)] - tau_ref[std::size_t(j)])),
              tol);
  }
}

TYPED_TEST(BlockedQrTyped, QrPropertyAcrossBlockSizes) {
  using T = TypeParam;
  const Index m = 96, n = 33;
  for (Index nb : {1, 4, 16, 64}) {
    auto a = random_matrix<T>(m, n, 2);
    auto orig = clone(a.cview());
    std::vector<T> tau;
    geqrf_blocked(a.view(), tau, nb);
    Matrix<T> r(n, n);
    set_zero(r.view());
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i <= j; ++i) r(i, j) = a(i, j);
    }
    ungqr_blocked(a.view(), tau, nb);
    EXPECT_LE(orthogonality_error(a.cview()),
              chase::testing::tol<T>(RealType<T>(500)))
        << "nb=" << nb;
    Matrix<T> rec(m, n);
    gemm(T(1), a.cview(), r.cview(), T(0), rec.view());
    EXPECT_LE(max_abs_diff(rec.cview(), orig.cview()),
              chase::testing::tol<T>(RealType<T>(5000)))
        << "nb=" << nb;
  }
}

TYPED_TEST(BlockedQrTyped, OrthonormalizeSquareAndSingleColumn) {
  using T = TypeParam;
  auto sq = random_matrix<T>(20, 20, 3);
  householder_orthonormalize_blocked(sq.view(), 6);
  EXPECT_LE(orthogonality_error(sq.cview()),
            chase::testing::tol<T>(RealType<T>(500)));

  auto col = random_matrix<T>(15, 1, 4);
  householder_orthonormalize_blocked(col.view(), 6);
  EXPECT_NEAR(double(nrm2(15, col.data())), 1.0,
              double(chase::testing::tol<T>()));
}

TEST(BlockedQr, LarftMatchesReflectorProduct) {
  // I - V T V^H must equal H_0 H_1 ... H_{k-1} applied to a probe matrix.
  using T = std::complex<double>;
  const Index m = 30, k = 5;
  auto a = random_matrix<T>(m, k, 5);
  std::vector<T> tau;
  geqrf(a.view(), tau);
  Matrix<T> v(m, k);
  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < m; ++i) {
      v(i, j) = i < j ? T(0) : (i == j ? T(1) : a(i, j));
    }
  }
  Matrix<T> t(k, k);
  detail::larft(v.cview(), tau, t.view());

  auto probe = random_matrix<T>(m, 3, 6);
  // Reference: apply H_{k-1}, ..., H_0 one at a time (left multiplication by
  // the product applies the last factor first).
  auto ref = clone(probe.cview());
  std::vector<T> work(3);
  for (Index j = k - 1; j >= 0; --j) {
    std::vector<T> tail(static_cast<std::size_t>(m - j - 1));
    for (Index i = j + 1; i < m; ++i) tail[std::size_t(i - j - 1)] = v(i, j);
    auto block = ref.block(j, 0, m - j, 3);
    larf_left(tau[std::size_t(j)], tail.data(), m - j, block, work.data());
  }
  // Blocked: probe <- (I - V T V^H) probe.
  Matrix<T> w(k, 3);
  larfb_left(v.cview(), t.cview(), /*conj=*/false, probe.view(), w.view());
  EXPECT_LE(max_abs_diff(probe.cview(), ref.cview()), 1e-12);
}

}  // namespace
}  // namespace chase::la
