#include "la/svd.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/qr.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::random_matrix;
using chase::testing::tol;

template <typename T>
class SvdTyped : public ::testing::Test {};
TYPED_TEST_SUITE(SvdTyped, chase::testing::ScalarTypes);

/// Builds a tall matrix with prescribed singular values via X = Q1 S Q2^H.
template <typename T>
Matrix<T> with_singular_values(Index m, Index n,
                               const std::vector<RealType<T>>& s,
                               std::uint64_t seed) {
  auto q1 = random_matrix<T>(m, n, seed);
  householder_orthonormalize(q1.view());
  auto q2 = random_matrix<T>(n, n, seed + 1);
  householder_orthonormalize(q2.view());
  // scale columns of q1 by s, multiply by q2^H
  for (Index j = 0; j < n; ++j) scal(m, T(s[std::size_t(j)]), q1.col(j));
  Matrix<T> x(m, n);
  gemm(T(1), Op::kNoTrans, q1.cview(), Op::kConjTrans, q2.cview(), T(0),
       x.view());
  return x;
}

TYPED_TEST(SvdTyped, RecoversPrescribedSingularValues) {
  using T = TypeParam;
  using R = RealType<T>;
  const Index m = 60, n = 8;
  std::vector<R> s = {R(9), R(7.5), R(5), R(3), R(1.5), R(1), R(0.25), R(0.1)};
  auto x = with_singular_values<T>(m, n, s, 1);
  auto sigma = singular_values_jacobi(x.view());
  ASSERT_EQ(sigma.size(), std::size_t(n));
  for (Index j = 0; j < n; ++j) {
    EXPECT_NEAR(double(sigma[std::size_t(j)]), double(s[std::size_t(j)]),
                double(tol<T>(R(2000))));
  }
}

TYPED_TEST(SvdTyped, Cond2OfOrthonormalIsOne) {
  using T = TypeParam;
  auto q = random_matrix<T>(50, 10, 2);
  householder_orthonormalize(q.view());
  EXPECT_NEAR(double(cond2(q.cview())), 1.0, 1e-4);
}

TYPED_TEST(SvdTyped, Cond2TracksPrescribedRatio) {
  using T = TypeParam;
  using R = RealType<T>;
  const R kappa = R(1000);
  std::vector<R> s = {kappa, R(500), R(100), R(10), R(1)};
  auto x = with_singular_values<T>(80, 5, s, 3);
  const R got = cond2(x.cview());
  EXPECT_NEAR(double(got / kappa), 1.0, 1e-3);
}

TEST(Svd, RankDeficientReportsHugeCondition) {
  Matrix<double> x(20, 3);
  for (Index i = 0; i < 20; ++i) {
    x(i, 0) = double(i + 1);
    x(i, 1) = 2.0 * double(i + 1);  // collinear with column 0
    x(i, 2) = std::sin(double(i));
  }
  // Depending on FMA contraction the smallest singular value is either an
  // exact zero (cond == inf) or O(eps * sigma_max); both mean "numerically
  // rank deficient".
  EXPECT_GE(cond2(x.cview()), 1e12);
}

TEST(Svd, SingularValuesOfDiagonal) {
  Matrix<double> x(5, 3);
  x(0, 0) = -4.0;  // sign must not matter
  x(1, 1) = 2.0;
  x(2, 2) = 1.0;
  auto s = singular_values_jacobi(x.view());
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 1.0);
}

}  // namespace
}  // namespace chase::la
