// Property sweep for the CHASE_FACTOR_KERNEL policy engine (src/la/factor/):
// every blocked factorization kernel must agree with the seed scalar oracle
// it replaced on every shape class the panel logic special-cases — empty,
// single, one-panel (<= kFactorBlock, where the policies are bitwise
// identical by the naive fallback), panel-edge remainders and multi-panel
// triangles — for all four scalar types. POTRF breakdowns must report the
// exact same info index under both policies (the QR escalation ladder keys
// off it), and the sequential solver must produce the same eigenpairs under
// either policy end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm.hpp"
#include "la/heevd.hpp"
#include "la/norms.hpp"
#include "la/potrf.hpp"
#include "la/qr_blocked.hpp"
#include "la/trsm.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::naive_gemm;
using chase::testing::random_hermitian;
using chase::testing::random_matrix;
using chase::testing::tol;

constexpr FactorKernel kPolicies[] = {FactorKernel::kNaive,
                                      FactorKernel::kBlocked};

// One value per shape class: empty, single, one panel minus/exact/plus one,
// and several panels with a remainder.
constexpr Index kTriangleDims[] = {0, 1, 63, 64, 65, 194};
constexpr Index kRhsDims[] = {1, 5, 97};

/// Well-conditioned random upper (or lower) triangular matrix: unit-scale
/// diagonal, off-diagonal damped by 1/n so solves do not amplify rounding
/// differences beyond the componentwise tolerance.
template <typename T>
Matrix<T> random_triangular(Index n, bool upper, int seed) {
  using R = RealType<T>;
  auto a = random_matrix<T>(n, n, seed);
  const R damp = R(1) / R(std::max<Index>(n, 1));
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const bool keep = upper ? i < j : i > j;
      if (i == j) {
        a(i, j) = T(R(2) + real_part(a(i, j)));
      } else if (keep) {
        a(i, j) *= T(damp);
      } else {
        a(i, j) = T(0);
      }
    }
  }
  return a;
}

template <typename T>
class FactorKernelsTyped : public ::testing::Test {};
TYPED_TEST_SUITE(FactorKernelsTyped, chase::testing::ScalarTypes);

TYPED_TEST(FactorKernelsTyped, TrsmTrmmBlockedMatchesNaiveAcrossShapes) {
  using T = TypeParam;
  using R = RealType<T>;
  int seed = 0;
  for (Index n : kTriangleDims) {
    for (Index m : kRhsDims) {
      ++seed;
      const auto upper = random_triangular<T>(n, /*upper=*/true, 10 + seed);
      const auto lower = random_triangular<T>(n, /*upper=*/false, 20 + seed);
      const auto right = random_matrix<T>(m, n, 30 + seed);  // m x n, X R ops
      const auto left = random_matrix<T>(n, m, 40 + seed);   // n x m, L X ops
      const R t = tol<T>(R(100)) * R(std::max<Index>(n, 1));

      struct Case {
        const char* name;
        void (*run)(ConstMatrixView<T>, MatrixView<T>);
        const Matrix<T>* tri;
        const Matrix<T>* rhs;
      };
      const Case cases[] = {
          {"trsm_right_upper", &trsm_right_upper<T>, &upper, &right},
          {"trsm_left_lower", &trsm_left_lower<T>, &lower, &left},
          {"trsm_left_upper_conj", &trsm_left_upper_conj<T>, &upper, &left},
          {"trmm_right_upper", &trmm_right_upper<T>, &upper, &right},
          {"trmm_left_upper", &trmm_left_upper<T>, &upper, &left},
          {"trmm_left_upper_conj", &trmm_left_upper_conj<T>, &upper, &left},
      };
      for (const Case& c : cases) {
        Matrix<T> results[2];
        for (int p = 0; p < 2; ++p) {
          ScopedFactorKernel scoped(kPolicies[p]);
          results[p] = clone(c.rhs->cview());
          c.run(c.tri->cview(), results[p].view());
        }
        EXPECT_LE(max_abs_diff(results[0].cview(), results[1].cview()), t)
            << c.name << " n=" << n << " m=" << m;
      }
    }
  }
}

TYPED_TEST(FactorKernelsTyped, HerkUpperBlockedMatchesNaiveAcrossShapes) {
  using T = TypeParam;
  using R = RealType<T>;
  int seed = 0;
  for (Index n : kTriangleDims) {
    for (Index m : {Index(1), Index(37), Index(130)}) {
      ++seed;
      const auto x = random_matrix<T>(m, n, 50 + seed);
      const T alpha = (seed % 2 == 0) ? T(1) : T(R(-0.75));
      const T beta = (seed % 3 == 0) ? T(0) : T(R(0.5));
      const auto c0 = random_matrix<T>(n, n, 60 + seed);
      Matrix<T> results[2];
      for (int p = 0; p < 2; ++p) {
        ScopedFactorKernel scoped(kPolicies[p]);
        results[p] = clone(c0.cview());
        herk_upper(alpha, x.cview(), beta, results[p].view());
      }
      EXPECT_LE(max_abs_diff(results[0].cview(), results[1].cview()),
                tol<T>(R(100)) * R(std::max<Index>(m, 1)))
          << "n=" << n << " m=" << m;
      // Both kernels must leave the strict lower triangle untouched — the
      // contract that lets CholeskyQR skip the Hermitian mirror entirely.
      for (int p = 0; p < 2; ++p) {
        for (Index j = 0; j < n; ++j) {
          for (Index i = j + 1; i < n; ++i) {
            EXPECT_EQ(results[p](i, j), c0(i, j))
                << factor_kernel_name(kPolicies[p]) << " n=" << n;
          }
        }
      }
    }
  }
}

TYPED_TEST(FactorKernelsTyped, PotrfBlockedMatchesNaiveOnPosDef) {
  using T = TypeParam;
  using R = RealType<T>;
  for (Index n : kTriangleDims) {
    // Positive definite by construction: Gram of a tall random block plus a
    // diagonal boost.
    const auto x = random_matrix<T>(n + 20, n, 70 + int(n));
    Matrix<T> a0(n, n);
    naive_gemm(T(1), Op::kConjTrans, x.cview(), Op::kNoTrans, x.cview(), T(0),
               a0.view());
    for (Index j = 0; j < n; ++j) a0(j, j) += T(R(n + 1));
    Matrix<T> results[2];
    int infos[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
      ScopedFactorKernel scoped(kPolicies[p]);
      results[p] = clone(a0.cview());
      infos[p] = potrf_upper(results[p].view());
    }
    EXPECT_EQ(infos[0], 0) << "n=" << n;
    EXPECT_EQ(infos[1], 0) << "n=" << n;
    EXPECT_LE(max_abs_diff(results[0].cview(), results[1].cview()),
              tol<T>(R(100)) * R(std::max<Index>(n, 1)))
        << "n=" << n;
    // Strict lower triangle exactly zeroed under both policies.
    for (int p = 0; p < 2; ++p) {
      for (Index j = 0; j < n; ++j) {
        for (Index i = j + 1; i < n; ++i) {
          EXPECT_EQ(results[p](i, j), T(0))
              << factor_kernel_name(kPolicies[p]) << " n=" << n;
        }
      }
    }
  }
}

TYPED_TEST(FactorKernelsTyped, PotrfInfoIndexAgreesExactly) {
  using T = TypeParam;
  // Indefinite diagonal: breakdown at a first-panel index and at an index
  // deep inside a later panel (info > kFactorBlock exercises the blocked
  // kernel's j0 offset arithmetic).
  for (Index bad : {Index(2), Index(100)}) {
    const Index n = 150;
    Matrix<T> a0(n, n);
    for (Index j = 0; j < n; ++j) a0(j, j) = T(1);
    a0(bad, bad) = T(-1);
    int infos[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
      ScopedFactorKernel scoped(kPolicies[p]);
      auto a = clone(a0.cview());
      infos[p] = potrf_upper(a.view());
    }
    EXPECT_EQ(infos[0], int(bad) + 1);
    EXPECT_EQ(infos[1], infos[0]);
  }
}

TYPED_TEST(FactorKernelsTyped, PotrfPivotFloorBreakdownAgrees) {
  using T = TypeParam;
  using R = RealType<T>;
  // Gram matrix of a rank-deficient block (duplicated column): with the
  // CholeskyQR relative pivot floor both policies must report a breakdown,
  // at the same index.
  const Index n = 90;
  auto x = random_matrix<T>(n + 40, n, 80);
  for (Index i = 0; i < x.rows(); ++i) x(i, n - 1) = x(i, 70);
  Matrix<T> a0(n, n);
  naive_gemm(T(1), Op::kConjTrans, x.cview(), Op::kNoTrans, x.cview(), T(0),
             a0.view());
  const R rel_tol = R(n) * unit_roundoff<T>();
  int infos[2] = {0, 0};
  for (int p = 0; p < 2; ++p) {
    ScopedFactorKernel scoped(kPolicies[p]);
    auto a = clone(a0.cview());
    infos[p] = potrf_upper(a.view(), rel_tol);
  }
  EXPECT_GT(infos[0], 0);
  EXPECT_EQ(infos[1], infos[0]);
}

TYPED_TEST(FactorKernelsTyped, HetrdReconstructsUnderBothPolicies) {
  using T = TypeParam;
  using R = RealType<T>;
  for (Index n : {Index(1), Index(5), Index(64), Index(65), Index(150)}) {
    const auto a0 = random_hermitian<T>(n, 90 + int(n));
    std::vector<R> ds[2], es[2];
    Matrix<T> qs[2];
    for (int p = 0; p < 2; ++p) {
      ScopedFactorKernel scoped(kPolicies[p]);
      auto a = clone(a0.cview());
      qs[p] = Matrix<T>(n, n);
      hetrd_lower(a.view(), ds[p], es[p], qs[p].view());
    }
    const R t = tol<T>(R(100)) * R(n);
    // The tridiagonal data agrees across policies. Both reductions are
    // backward stable but sum trailing updates in different orders, so the
    // entrywise gap is bounded by c * n * u * ||A|| with ||A|| ~ sqrt(n) for
    // this ensemble — hence the extra sqrt(n) over the reconstruction bound.
    const R td = t * std::sqrt(R(n));
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(ds[0][std::size_t(i)], ds[1][std::size_t(i)], td)
          << "n=" << n << " i=" << i;
    }
    for (Index i = 0; i + 1 < n; ++i) {
      EXPECT_NEAR(es[0][std::size_t(i)], es[1][std::size_t(i)], td)
          << "n=" << n << " i=" << i;
    }
    // ...and each policy's (Q, T) reconstructs A: Q orthonormal and
    // Q T Q^H = A.
    for (int p = 0; p < 2; ++p) {
      EXPECT_LE(orthogonality_error(qs[p].cview()), t)
          << factor_kernel_name(kPolicies[p]) << " n=" << n;
      Matrix<T> tri(n, n);
      for (Index i = 0; i < n; ++i) {
        tri(i, i) = T(ds[p][std::size_t(i)]);
        if (i + 1 < n) {
          tri(i + 1, i) = T(es[p][std::size_t(i)]);
          tri(i, i + 1) = T(es[p][std::size_t(i)]);
        }
      }
      Matrix<T> qt(n, n), qtqh(n, n);
      naive_gemm(T(1), Op::kNoTrans, qs[p].cview(), Op::kNoTrans, tri.cview(),
                 T(0), qt.view());
      naive_gemm(T(1), Op::kNoTrans, qt.cview(), Op::kConjTrans,
                 qs[p].cview(), T(0), qtqh.view());
      EXPECT_LE(max_abs_diff(qtqh.cview(), a0.cview()), t)
          << factor_kernel_name(kPolicies[p]) << " n=" << n;
    }
  }
}

TYPED_TEST(FactorKernelsTyped, BlockedQrOrthonormalizesUnderBothPolicies) {
  using T = TypeParam;
  using R = RealType<T>;
  // householder_orthonormalize_blocked rides larft/larfb, which dispatch on
  // the factor policy; either way Q must be orthonormal and span X.
  const Index m = 200, n = 70;
  const auto x0 = random_matrix<T>(m, n, 110);
  for (FactorKernel kern : kPolicies) {
    ScopedFactorKernel scoped(kern);
    auto q = clone(x0.cview());
    householder_orthonormalize_blocked(q.view());
    const R t = tol<T>(R(100)) * R(m);
    EXPECT_LE(orthogonality_error(q.cview()), t) << factor_kernel_name(kern);
    // Span check: X = Q (Q^H X) to rounding.
    Matrix<T> r(n, n), qr(m, n);
    naive_gemm(T(1), Op::kConjTrans, q.cview(), Op::kNoTrans, x0.cview(),
               T(0), r.view());
    naive_gemm(T(1), Op::kNoTrans, q.cview(), Op::kNoTrans, r.cview(), T(0),
               qr.view());
    EXPECT_LE(max_abs_diff(qr.cview(), x0.cview()), t)
        << factor_kernel_name(kern);
  }
}

TEST(FactorPolicy, ParseAndNames) {
  EXPECT_EQ(parse_factor_kernel("naive"), FactorKernel::kNaive);
  EXPECT_EQ(parse_factor_kernel("blocked"), FactorKernel::kBlocked);
  EXPECT_FALSE(parse_factor_kernel("micro").has_value());
  EXPECT_FALSE(parse_factor_kernel("").has_value());
  for (FactorKernel kern : kPolicies) {
    EXPECT_EQ(parse_factor_kernel(factor_kernel_name(kern)), kern);
  }
}

TEST(FactorPolicy, ScopedOverrideRestores) {
  const FactorKernel before = factor_kernel();
  {
    ScopedFactorKernel scoped(FactorKernel::kNaive);
    EXPECT_EQ(factor_kernel(), FactorKernel::kNaive);
    {
      ScopedFactorKernel inner(FactorKernel::kBlocked);
      EXPECT_EQ(factor_kernel(), FactorKernel::kBlocked);
    }
    EXPECT_EQ(factor_kernel(), FactorKernel::kNaive);
  }
  EXPECT_EQ(factor_kernel(), before);
}

// End-to-end policy equivalence: the sequential Algorithm 2 driver
// (CholeskyQR's HERK/POTRF/TRSM and the Rayleigh-Ritz HEEVD all ride the
// factor policy) must produce the same eigenpairs under both policies to
// solver tolerance.
template <typename T>
class FactorKernelsSolverTyped : public ::testing::Test {};
TYPED_TEST_SUITE(FactorKernelsSolverTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(FactorKernelsSolverTyped, SolverEigenpairsAgreeAcrossPolicies) {
  using T = TypeParam;
  const Index n = 120;
  auto eigs = gen::uniform_spectrum<double>(n, -2.0, 4.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 3);

  core::ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 6;
  cfg.tol = 1e-10;

  std::vector<core::ChaseResult<T>> results;
  for (FactorKernel kern : kPolicies) {
    ScopedFactorKernel scoped(kern);
    results.push_back(core::solve_sequential<T>(h.cview(), cfg));
    ASSERT_TRUE(results.back().converged) << factor_kernel_name(kern);
  }
  const auto& ref = results.front();
  const auto& r = results.back();
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], ref.eigenvalues[std::size_t(j)],
                1e-8)
        << "pair " << j;
    // Eigenvectors agree up to phase: |<v_ref, v>| == 1. The spectrum is
    // uniform, so the wanted pairs are simple and this is well-defined.
    T ip(0);
    for (Index i = 0; i < n; ++i) {
      ip += conjugate(ref.eigenvectors(i, j)) * r.eigenvectors(i, j);
    }
    EXPECT_NEAR(abs_value(ip), 1.0, 1e-7) << "pair " << j;
  }
}

}  // namespace
}  // namespace chase::la
