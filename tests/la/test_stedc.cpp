#include "la/stedc.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

/// Validates Q diag(d) Q^T against the tridiagonal (d0, e0) and Q^T Q = I.
template <typename R>
void expect_valid_tridiag_eig(const std::vector<R>& d0,
                              const std::vector<R>& e0,
                              const std::vector<R>& lambda,
                              const Matrix<R>& q, R tol) {
  const Index n = Index(d0.size());
  EXPECT_TRUE(std::is_sorted(lambda.begin(), lambda.end()));
  EXPECT_LE(orthogonality_error(q.cview()), tol);
  // T q_k = lambda_k q_k, applied directly through the tridiagonal stencil.
  for (Index k = 0; k < n; ++k) {
    R err = 0;
    for (Index i = 0; i < n; ++i) {
      R acc = d0[std::size_t(i)] * q(i, k);
      if (i > 0) acc += e0[std::size_t(i - 1)] * q(i - 1, k);
      if (i + 1 < n) acc += e0[std::size_t(i)] * q(i + 1, k);
      acc -= lambda[std::size_t(k)] * q(i, k);
      err += acc * acc;
    }
    EXPECT_LE(std::sqrt(err), tol) << "pair " << k;
  }
}

std::pair<std::vector<double>, std::vector<double>> random_tridiag(
    Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);  // guard slot
  for (Index i = 0; i < n; ++i) d[std::size_t(i)] = rng.uniform(-2.0, 2.0);
  for (Index i = 0; i + 1 < n; ++i) {
    e[std::size_t(i)] = rng.uniform(-1.0, 1.0);
  }
  return {d, e};
}

TEST(Stedc, MatchesQlOnRandomTridiagonals) {
  for (Index n : {5, 24, 25, 64, 130}) {
    for (std::uint64_t seed : {1u, 2u}) {
      auto [d0, e0] = random_tridiag(n, seed);
      // D&C path.
      auto d_dc = d0;
      auto e_dc = e0;
      Matrix<double> q;
      stedc(d_dc, e_dc, q);
      expect_valid_tridiag_eig(d0, e0, d_dc, q, 1e-6);

      // QL reference eigenvalues.
      auto d_ql = d0;
      auto e_ql = e0;
      Matrix<double> z(n, n);
      set_identity(z.view());
      ASSERT_TRUE(steql(d_ql, e_ql, z.view()));
      std::sort(d_ql.begin(), d_ql.end());
      for (Index i = 0; i < n; ++i) {
        EXPECT_NEAR(d_dc[std::size_t(i)], d_ql[std::size_t(i)], 1e-10)
            << "n=" << n << " seed=" << seed << " i=" << i;
      }
    }
  }
}

TEST(Stedc, ClementMatrixIntegerSpectrum) {
  const Index n = 41;  // crosses the recursion cutoff
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i + 1 < n; ++i) {
    e[std::size_t(i)] = std::sqrt(double((i + 1) * (n - 1 - i)));
  }
  auto d0 = d;
  auto e0 = e;
  Matrix<double> q;
  stedc(d, e, q);
  for (Index j = 0; j < n; ++j) {
    EXPECT_NEAR(d[std::size_t(j)], double(2 * j) - double(n - 1), 1e-9);
  }
  expect_valid_tridiag_eig(d0, e0, d, q, 1e-6);
}

TEST(Stedc, DecoupledBlocksZeroOffDiagonal) {
  // e crossing the split is exactly zero: full deflation in the merge.
  const Index n = 60;
  auto [d0, e0] = random_tridiag(n, 5);
  e0[std::size_t(n / 2 - 1)] = 0.0;
  auto d = d0;
  auto e = e0;
  Matrix<double> q;
  stedc(d, e, q);
  expect_valid_tridiag_eig(d0, e0, d, q, 1e-6);
}

TEST(Stedc, MultipleEigenvaluesViaDeflation) {
  // diag(1,...,1,5) with zero off-diagonals except one tiny coupling:
  // clusters exercise the duplicate-diagonal rotations.
  const Index n = 50;
  std::vector<double> d(static_cast<std::size_t>(n), 1.0);
  d[std::size_t(n - 1)] = 5.0;
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  e[std::size_t(n / 2 - 1)] = 1e-3;
  auto d0 = d;
  auto e0 = e;
  Matrix<double> q;
  stedc(d, e, q);
  expect_valid_tridiag_eig(d0, e0, d, q, 1e-6);
}

TEST(Stedc, WilkinsonPairs) {
  const Index n = 21;
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i < n; ++i) d[std::size_t(i)] = std::abs(double(i) - 10.0);
  e[std::size_t(n - 1)] = 0.0;
  auto d0 = d;
  auto e0 = e;
  Matrix<double> q;
  stedc(d, e, q);
  EXPECT_NEAR(d.back(), 10.746194182903393, 1e-9);
  expect_valid_tridiag_eig(d0, e0, d, q, 1e-6);
}

template <typename T>
class HeevdDcTyped : public ::testing::Test {};
TYPED_TEST_SUITE(HeevdDcTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(HeevdDcTyped, MatchesQlPathOnHermitianMatrices) {
  using T = TypeParam;
  const Index n = 90;  // above the D&C cutoff after tridiagonalization
  auto a = chase::testing::random_hermitian<T>(n, 11);

  auto w1 = la::clone(a.cview());
  std::vector<double> ev_ql;
  Matrix<T> z_ql(n, n);
  heevd(w1.view(), ev_ql, z_ql.view());

  auto w2 = la::clone(a.cview());
  std::vector<double> ev_dc;
  Matrix<T> z_dc(n, n);
  heevd_dc(w2.view(), ev_dc, z_dc.view());

  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(ev_dc[std::size_t(i)], ev_ql[std::size_t(i)], 1e-10);
  }
  EXPECT_LE(orthogonality_error(z_dc.view().as_const()), 1e-9);
  // Eigen equation.
  Matrix<T> av(n, n);
  gemm(T(1), a.cview(), z_dc.view().as_const(), T(0), av.view());
  for (Index k = 0; k < n; ++k) {
    double err = 0;
    for (Index i = 0; i < n; ++i) {
      const T dlt = av(i, k) - T(ev_dc[std::size_t(k)]) * z_dc(i, k);
      err += double(real_part(conjugate(dlt) * dlt));
    }
    EXPECT_LE(std::sqrt(err), 1e-6) << "pair " << k;
  }
}

}  // namespace
}  // namespace chase::la
