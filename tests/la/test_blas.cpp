#include <gtest/gtest.h>

#include <complex>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::naive_gemm;
using chase::testing::random_matrix;
using chase::testing::tol;

template <typename T>
class BlasTyped : public ::testing::Test {};
TYPED_TEST_SUITE(BlasTyped, chase::testing::ScalarTypes);

TYPED_TEST(BlasTyped, DotcConjugatesFirstArgument) {
  using T = TypeParam;
  auto x = random_matrix<T>(50, 1, 1);
  auto y = random_matrix<T>(50, 1, 2);
  T ref(0);
  for (Index i = 0; i < 50; ++i) ref += conjugate(x(i, 0)) * y(i, 0);
  const T got = dotc(50, x.data(), y.data());
  EXPECT_LE(abs_value(T(got - ref)), tol<T>());
}

TYPED_TEST(BlasTyped, Nrm2MatchesDotc) {
  using T = TypeParam;
  auto x = random_matrix<T>(64, 1, 3);
  const auto n2 = nrm2_squared(64, x.data());
  const T d = dotc(64, x.data(), x.data());
  EXPECT_NEAR(double(n2), double(real_part(d)), double(tol<T>()) * 64);
}

TYPED_TEST(BlasTyped, GemmMatchesNaiveAllOpCombinations) {
  using T = TypeParam;
  const Index m = 37, n = 29, k = 41;
  for (Op opa : {Op::kNoTrans, Op::kTrans, Op::kConjTrans}) {
    for (Op opb : {Op::kNoTrans, Op::kTrans, Op::kConjTrans}) {
      auto a = (opa == Op::kNoTrans) ? random_matrix<T>(m, k, 10)
                                     : random_matrix<T>(k, m, 10);
      auto b = (opb == Op::kNoTrans) ? random_matrix<T>(k, n, 11)
                                     : random_matrix<T>(n, k, 11);
      auto c0 = random_matrix<T>(m, n, 12);
      auto c1 = clone(c0.cview());
      const T alpha = T(RealType<T>(1.25));
      const T beta = T(RealType<T>(-0.5));
      gemm(alpha, opa, a.cview(), opb, b.cview(), beta, c0.view());
      naive_gemm(alpha, opa, a.cview(), opb, b.cview(), beta, c1.view());
      EXPECT_LE(max_abs_diff(c0.cview(), c1.cview()),
                tol<T>(RealType<T>(1000)))
          << "opa=" << int(opa) << " opb=" << int(opb);
    }
  }
}

TYPED_TEST(BlasTyped, GemmLargeBlockedPath) {
  using T = TypeParam;
  // Dimensions straddle several blocking tiles to exercise edge tiles.
  const Index m = 301, n = 143, k = 467;
  auto a = random_matrix<T>(m, k, 20);
  auto b = random_matrix<T>(k, n, 21);
  Matrix<T> c0(m, n), c1(m, n);
  gemm(T(1), a.cview(), b.cview(), T(0), c0.view());
  naive_gemm(T(1), Op::kNoTrans, a.cview(), Op::kNoTrans, b.cview(), T(0),
             c1.view());
  EXPECT_LE(max_abs_diff(c0.cview(), c1.cview()),
            tol<T>(RealType<T>(4000)));
}

TYPED_TEST(BlasTyped, GemmBetaZeroOverwritesNaN) {
  using T = TypeParam;
  auto a = random_matrix<T>(8, 8, 30);
  auto b = random_matrix<T>(8, 8, 31);
  Matrix<T> c(8, 8);
  c(0, 0) = T(std::numeric_limits<RealType<T>>::quiet_NaN());
  gemm(T(1), a.cview(), b.cview(), T(0), c.view());
  EXPECT_TRUE(std::isfinite(double(abs_value(c(0, 0)))));
}

TYPED_TEST(BlasTyped, GemmShapeMismatchThrows) {
  using T = TypeParam;
  auto a = random_matrix<T>(4, 5, 40);
  auto b = random_matrix<T>(6, 3, 41);
  Matrix<T> c(4, 3);
  EXPECT_THROW(gemm(T(1), a.cview(), b.cview(), T(0), c.view()), Error);
}

TYPED_TEST(BlasTyped, GramIsHermitianPositive) {
  using T = TypeParam;
  auto x = random_matrix<T>(120, 17, 50);
  Matrix<T> g(17, 17);
  gram(x.cview(), g.view());
  for (Index j = 0; j < 17; ++j) {
    EXPECT_EQ(imag_part(g(j, j)), RealType<T>(0));
    EXPECT_GT(real_part(g(j, j)), RealType<T>(0));
    for (Index i = 0; i < j; ++i) {
      EXPECT_LE(abs_value(T(g(i, j) - conjugate(g(j, i)))), tol<T>());
    }
  }
}

TYPED_TEST(BlasTyped, GemvMatchesGemm) {
  using T = TypeParam;
  auto a = random_matrix<T>(23, 17, 60);
  auto x = random_matrix<T>(17, 1, 61);
  Matrix<T> y0(23, 1), y1(23, 1);
  gemv(T(2), a.cview(), x.data(), T(0), y0.data());
  gemm(T(2), a.cview(), x.cview(), T(0), y1.view());
  EXPECT_LE(max_abs_diff(y0.cview(), y1.cview()), tol<T>(RealType<T>(500)));
}

TYPED_TEST(BlasTyped, GemvConjMatchesGemm) {
  using T = TypeParam;
  auto a = random_matrix<T>(23, 17, 62);
  auto x = random_matrix<T>(23, 1, 63);
  Matrix<T> y0(17, 1), y1(17, 1);
  gemv_conj(T(1), a.cview(), x.data(), T(0), y0.data());
  gemm(T(1), Op::kConjTrans, a.cview(), Op::kNoTrans, x.cview(), T(0),
       y1.view());
  EXPECT_LE(max_abs_diff(y0.cview(), y1.cview()), tol<T>(RealType<T>(500)));
}

TYPED_TEST(BlasTyped, Her2MinusMatchesDefinition) {
  using T = TypeParam;
  const Index n = 19;
  auto a = chase::testing::random_hermitian<T>(n, 70);
  auto v = random_matrix<T>(n, 1, 71);
  auto w = random_matrix<T>(n, 1, 72);
  auto ref = clone(a.cview());
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      ref(i, j) -= v(i, 0) * conjugate(w(j, 0)) + w(i, 0) * conjugate(v(j, 0));
    }
  }
  her2_minus(a.view(), v.data(), w.data());
  EXPECT_LE(max_abs_diff(a.cview(), ref.cview()), tol<T>());
}

TYPED_TEST(BlasTyped, OrthogonalityErrorOfIdentity) {
  using T = TypeParam;
  Matrix<T> q(30, 10);
  set_identity(q.view());
  EXPECT_LE(orthogonality_error(q.cview()), tol<T>());
}

TEST(Norms, FrobeniusKnownValue) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(frobenius_norm(a.cview()), 5.0);
}

}  // namespace
}  // namespace chase::la
