// fp64 <-> fp32 conversion helpers used by the mixed-precision backend:
// exactness for representable values, IEEE edge cases (denormals, overflow,
// NaN/Inf), complex round-trips, and shape checking.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <type_traits>

#include "common/check.hpp"
#include "common/scalar.hpp"
#include "la/convert.hpp"
#include "la/matrix.hpp"

namespace chase::la {
namespace {

static_assert(std::is_same_v<LowPrecision<double>, float>);
static_assert(std::is_same_v<LowPrecision<std::complex<double>>,
                             std::complex<float>>);
static_assert(std::is_same_v<LowPrecision<float>, float>);
static_assert(std::is_same_v<LowPrecision<std::complex<float>>,
                             std::complex<float>>);
static_assert(kHasLowPrecision<double>);
static_assert(kHasLowPrecision<std::complex<double>>);
static_assert(!kHasLowPrecision<float>);
static_assert(!kHasLowPrecision<std::complex<float>>);

TEST(DemoteValue, RepresentableValuesAreExact) {
  // Values with <= 24 significand bits survive the round trip bit-for-bit.
  for (double x : {0.0, 1.0, -2.5, 0.3125, 1048576.0, -1.1920928955078125e-07}) {
    EXPECT_EQ(promote_value(demote_value(x)), x);
  }
}

TEST(DemoteValue, RoundsInexactValues) {
  const double x = 0.1;  // not representable in fp32
  const float f = demote_value(x);
  EXPECT_NE(double(f), x);
  EXPECT_NEAR(double(f), x, 1e-8);
}

TEST(DemoteValue, BelowNormalRangeLandsOnDenormalOrZero) {
  // 1e-45 is inside the fp32 denormal range (min denormal ~1.4e-45).
  const float tiny = demote_value(1e-45);
  EXPECT_GT(tiny, 0.0f);
  EXPECT_LT(tiny, std::numeric_limits<float>::min());  // denormal
  // 1e-50 is below even the denormal range: flushes to +0.
  EXPECT_EQ(demote_value(1e-50), 0.0f);
  EXPECT_EQ(demote_value(-1e-50), -0.0f);
  EXPECT_TRUE(std::signbit(demote_value(-1e-50)));
}

TEST(DemoteValue, AboveRangeLandsOnInf) {
  EXPECT_TRUE(std::isinf(demote_value(1e300)));
  EXPECT_GT(demote_value(1e300), 0.0f);
  EXPECT_TRUE(std::isinf(demote_value(-1e300)));
  EXPECT_LT(demote_value(-1e300), 0.0f);
}

TEST(DemoteValue, NanPropagates) {
  EXPECT_TRUE(std::isnan(demote_value(std::numeric_limits<double>::quiet_NaN())));
  const std::complex<float> z =
      demote_value(std::complex<double>(std::nan(""), 1.0));
  EXPECT_TRUE(std::isnan(z.real()));
  EXPECT_EQ(z.imag(), 1.0f);
}

TEST(DemoteValue, ComplexRoundTrip) {
  const std::complex<double> z(0.75, -3.5);  // both parts fp32-exact
  EXPECT_EQ(promote_value(demote_value(z)), z);
  const std::complex<double> w(1e300, -1e-50);
  const std::complex<float> wf = demote_value(w);
  EXPECT_TRUE(std::isinf(wf.real()));
  EXPECT_EQ(wf.imag(), -0.0f);
}

template <typename T>
class ConvertPanel : public ::testing::Test {};
using PanelTypes = ::testing::Types<double, std::complex<double>>;
TYPED_TEST_SUITE(ConvertPanel, PanelTypes);

TYPED_TEST(ConvertPanel, RoundTripExactForRepresentablePanel) {
  using T = TypeParam;
  using L = LowPrecision<T>;
  const Index m = 17, n = 5;
  Matrix<T> src(m, n), back(m, n);
  Matrix<L> low(m, n);
  for (Index j = 0; j < n; ++j)
    for (Index i = 0; i < m; ++i)
      src(i, j) = T(RealType<T>(0.25) * RealType<T>(i + 1) -
                    RealType<T>(2) * RealType<T>(j));
  demote<T>(src.cview(), low.view());
  promote<T>(low.cview(), back.view());
  for (Index j = 0; j < n; ++j)
    for (Index i = 0; i < m; ++i) EXPECT_EQ(back(i, j), src(i, j));
}

TYPED_TEST(ConvertPanel, ShapeMismatchThrows) {
  using T = TypeParam;
  using L = LowPrecision<T>;
  Matrix<T> src(4, 3);
  Matrix<L> dst(4, 2);
  EXPECT_THROW(demote<T>(src.cview(), dst.view()), chase::Error);
  Matrix<T> wide(5, 3);
  Matrix<L> low(4, 3);
  EXPECT_THROW(promote<T>(low.cview(), wide.view()), chase::Error);
}

}  // namespace
}  // namespace chase::la
