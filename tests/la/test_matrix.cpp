#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "tests/testing.hpp"

namespace chase::la {
namespace {

TEST(Matrix, ConstructZeroInitialized) {
  Matrix<double> a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 0.0);
  }
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  const double* p = a.data();
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], 2);
  EXPECT_EQ(p[2], 3);
  EXPECT_EQ(p[3], 4);
}

TEST(Matrix, BlockViewAliasesStorage) {
  Matrix<double> a(4, 4);
  auto blk = a.block(1, 2, 2, 2);
  blk(0, 0) = 7.0;
  EXPECT_EQ(a(1, 2), 7.0);
  EXPECT_EQ(blk.ld(), a.ld());
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix<double> a(4, 4);
  EXPECT_THROW(a.block(2, 2, 3, 1), Error);
  EXPECT_THROW(a.block(0, 0, 1, 5), Error);
  EXPECT_THROW(a.view().block(-1, 0, 1, 1), Error);
}

TEST(Matrix, CopyRespectsLeadingDimension) {
  Matrix<double> a(5, 5);
  for (Index j = 0; j < 5; ++j)
    for (Index i = 0; i < 5; ++i) a(i, j) = double(i + 10 * j);
  Matrix<double> b(2, 2);
  copy(a.block(1, 1, 2, 2).as_const(), b.view());
  EXPECT_EQ(b(0, 0), 11.0);
  EXPECT_EQ(b(1, 0), 12.0);
  EXPECT_EQ(b(0, 1), 21.0);
  EXPECT_EQ(b(1, 1), 22.0);
}

TEST(Matrix, SetIdentityRectangular) {
  Matrix<double> a(4, 2);
  set_identity(a.view());
  for (Index j = 0; j < 2; ++j) {
    for (Index i = 0; i < 4; ++i) {
      EXPECT_EQ(a(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, ConjTranspose) {
  using C = std::complex<double>;
  Matrix<C> a(2, 3);
  a(0, 0) = C(1, 2);
  a(1, 2) = C(3, -4);
  Matrix<C> at(3, 2);
  conj_transpose(a.cview(), at.view());
  EXPECT_EQ(at(0, 0), C(1, -2));
  EXPECT_EQ(at(2, 1), C(3, 4));
}

TEST(Matrix, ResizeClearsContents) {
  Matrix<double> a(2, 2);
  a(0, 0) = 5.0;
  a.resize(3, 3);
  EXPECT_EQ(a(0, 0), 0.0);
  EXPECT_EQ(a.rows(), 3);
}

TEST(Matrix, EmptyViewsAreLegal) {
  Matrix<double> a(0, 0);
  EXPECT_TRUE(a.view().empty());
  Matrix<double> b(3, 3);
  auto blk = b.block(1, 1, 0, 2);
  EXPECT_TRUE(blk.empty());
}

}  // namespace
}  // namespace chase::la
