#include <gtest/gtest.h>

#include <complex>

#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/potrf.hpp"
#include "la/qr.hpp"
#include "la/trsm.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::random_matrix;
using chase::testing::tol;

template <typename T>
class FactorTyped : public ::testing::Test {};
TYPED_TEST_SUITE(FactorTyped, chase::testing::ScalarTypes);

/// Well-conditioned HPD matrix: X^H X + n I from a random tall X.
template <typename T>
Matrix<T> random_hpd(Index n, std::uint64_t seed) {
  auto x = random_matrix<T>(2 * n, n, seed);
  Matrix<T> g(n, n);
  gram(x.cview(), g.view());
  for (Index j = 0; j < n; ++j) g(j, j) += T(RealType<T>(n));
  return g;
}

TYPED_TEST(FactorTyped, PotrfReconstructs) {
  using T = TypeParam;
  const Index n = 31;
  auto g = random_hpd<T>(n, 1);
  auto r = clone(g.cview());
  ASSERT_EQ(potrf_upper(r.view()), 0);
  // Strict lower triangle must be zeroed.
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < n; ++i) EXPECT_EQ(r(i, j), T(0));
  }
  Matrix<T> rec(n, n);
  gemm(T(1), Op::kConjTrans, r.cview(), Op::kNoTrans, r.cview(), T(0),
       rec.view());
  EXPECT_LE(max_abs_diff(rec.cview(), g.cview()),
            tol<T>(RealType<T>(1000)) * RealType<T>(n));
}

TYPED_TEST(FactorTyped, PotrfDetectsIndefinite) {
  using T = TypeParam;
  Matrix<T> a(3, 3);
  a(0, 0) = T(1);
  a(1, 1) = T(-1);  // not positive definite at minor 2
  a(2, 2) = T(1);
  const int info = potrf_upper(a.view());
  EXPECT_EQ(info, 2);
}

TYPED_TEST(FactorTyped, TrsmRightUpperSolves) {
  using T = TypeParam;
  const Index m = 40, n = 12;
  auto g = random_hpd<T>(n, 2);
  auto r = clone(g.cview());
  ASSERT_EQ(potrf_upper(r.view()), 0);
  auto x = random_matrix<T>(m, n, 3);
  auto b = clone(x.cview());
  trsm_right_upper(r.cview(), x.view());
  // x * R should reproduce b.
  trmm_right_upper(r.cview(), x.view());
  EXPECT_LE(max_abs_diff(x.cview(), b.cview()), tol<T>(RealType<T>(5000)));
}

TYPED_TEST(FactorTyped, TrsmLeftLowerSolves) {
  using T = TypeParam;
  const Index n = 15;
  auto g = random_hpd<T>(n, 4);
  auto r = clone(g.cview());
  ASSERT_EQ(potrf_upper(r.view()), 0);
  Matrix<T> l(n, n);
  conj_transpose(r.cview(), l.view());  // lower factor L = R^H
  auto b = random_matrix<T>(n, 5, 5);
  auto x = clone(b.cview());
  trsm_left_lower(l.cview(), x.view());
  Matrix<T> rec(n, 5);
  gemm(T(1), l.cview(), x.cview(), T(0), rec.view());
  EXPECT_LE(max_abs_diff(rec.cview(), b.cview()), tol<T>(RealType<T>(5000)));
}

TYPED_TEST(FactorTyped, TrsmLeftUpperConjSolves) {
  using T = TypeParam;
  const Index n = 13;
  auto g = random_hpd<T>(n, 6);
  auto r = clone(g.cview());
  ASSERT_EQ(potrf_upper(r.view()), 0);
  auto b = random_matrix<T>(n, 4, 7);
  auto x = clone(b.cview());
  trsm_left_upper_conj(r.cview(), x.view());
  // R^H x should reproduce b.
  Matrix<T> rh(n, n);
  conj_transpose(r.cview(), rh.view());
  Matrix<T> rec(n, 4);
  gemm(T(1), rh.cview(), x.cview(), T(0), rec.view());
  EXPECT_LE(max_abs_diff(rec.cview(), b.cview()), tol<T>(RealType<T>(5000)));
}

TYPED_TEST(FactorTyped, HouseholderQrOrthonormalAndReconstructs) {
  using T = TypeParam;
  const Index m = 83, n = 17;
  auto x = random_matrix<T>(m, n, 8);
  auto orig = clone(x.cview());
  Matrix<T> r(n, n);
  householder_qr(x.view(), r.view());

  EXPECT_LE(orthogonality_error(x.cview()), tol<T>(RealType<T>(200)));
  // R upper triangular.
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < n; ++i) EXPECT_EQ(r(i, j), T(0));
  }
  Matrix<T> rec(m, n);
  gemm(T(1), x.cview(), r.cview(), T(0), rec.view());
  EXPECT_LE(max_abs_diff(rec.cview(), orig.cview()),
            tol<T>(RealType<T>(2000)));
}

TYPED_TEST(FactorTyped, HouseholderQrSquare) {
  using T = TypeParam;
  const Index n = 24;
  auto x = random_matrix<T>(n, n, 9);
  Matrix<T> r(n, n);
  householder_qr(x.view(), r.view());
  EXPECT_LE(orthogonality_error(x.cview()), tol<T>(RealType<T>(200)));
}

TYPED_TEST(FactorTyped, HouseholderQrSingleColumn) {
  using T = TypeParam;
  auto x = random_matrix<T>(10, 1, 10);
  const RealType<T> norm = nrm2(10, x.data());
  Matrix<T> r(1, 1);
  householder_qr(x.view(), r.view());
  EXPECT_NEAR(double(nrm2(10, x.data())), 1.0, double(tol<T>()));
  EXPECT_NEAR(double(abs_value(r(0, 0))), double(norm),
              double(tol<T>() * norm));
}

TYPED_TEST(FactorTyped, HouseholderOrthonormalizeRankRevealingStability) {
  using T = TypeParam;
  // Nearly collinear columns: HHQR must still return an orthonormal basis.
  const Index m = 60, n = 6;
  auto x = random_matrix<T>(m, n, 11);
  for (Index j = 1; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      x(i, j) = x(i, 0) + RealType<T>(1e-3) * x(i, j);
    }
  }
  householder_orthonormalize(x.view());
  EXPECT_LE(orthogonality_error(x.cview()), tol<T>(RealType<T>(500)));
}

}  // namespace
}  // namespace chase::la
