#include "la/io.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <filesystem>

#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::random_hermitian;
using chase::testing::random_matrix;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

template <typename T>
class IoTyped : public ::testing::Test {};
TYPED_TEST_SUITE(IoTyped, chase::testing::ScalarTypes);

TYPED_TEST(IoTyped, BinaryRoundTrip) {
  using T = TypeParam;
  auto a = random_matrix<T>(17, 9, 1);
  const auto path = temp_path("chase_io_bin.mat");
  save_binary(a.cview(), path);
  auto b = load_binary<T>(path);
  EXPECT_EQ(b.rows(), 17);
  EXPECT_EQ(b.cols(), 9);
  EXPECT_EQ(max_abs_diff(a.cview(), b.cview()), RealType<T>(0));  // bitwise
  std::remove(path.c_str());
}

TYPED_TEST(IoTyped, BinaryTypeMismatchThrows) {
  using T = TypeParam;
  auto a = random_matrix<T>(4, 4, 2);
  const auto path = temp_path("chase_io_mismatch.mat");
  save_binary(a.cview(), path);
  if constexpr (std::is_same_v<T, double>) {
    EXPECT_THROW(load_binary<float>(path), Error);
  } else {
    EXPECT_THROW(load_binary<double>(path), Error);
  }
  std::remove(path.c_str());
}

TYPED_TEST(IoTyped, MatrixMarketGeneralRoundTrip) {
  using T = TypeParam;
  auto a = random_matrix<T>(11, 7, 3);
  const auto path = temp_path("chase_io_gen.mtx");
  save_matrix_market(a.cview(), path);
  auto b = load_matrix_market<T>(path);
  EXPECT_LE(max_abs_diff(a.cview(), b.cview()), RealType<T>(1e-6));
  std::remove(path.c_str());
}

TYPED_TEST(IoTyped, MatrixMarketHermitianRoundTrip) {
  using T = TypeParam;
  auto a = random_hermitian<T>(13, 4);
  const auto path = temp_path("chase_io_herm.mtx");
  save_matrix_market(a.cview(), path, /*hermitian=*/true);
  auto b = load_matrix_market<T>(path);
  EXPECT_LE(max_abs_diff(a.cview(), b.cview()), RealType<T>(1e-6));
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_binary<double>("/nonexistent/file.mat"), Error);
  EXPECT_THROW(load_matrix_market<double>("/nonexistent/file.mtx"), Error);
}

TEST(Io, RejectsGarbage) {
  const auto path = temp_path("chase_io_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a matrix";
  }
  EXPECT_THROW(load_binary<double>(path), Error);
  EXPECT_THROW(load_matrix_market<double>(path), Error);
  std::remove(path.c_str());
}

TEST(Io, EmptyMatrixRoundTrip) {
  Matrix<double> a(0, 0);
  const auto path = temp_path("chase_io_empty.mat");
  save_binary(a.cview(), path);
  auto b = load_binary<double>(path);
  EXPECT_EQ(b.rows(), 0);
  EXPECT_EQ(b.cols(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chase::la
