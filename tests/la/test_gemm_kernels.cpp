// Property sweep for the CHASE_GEMM_KERNEL policy engine (src/la/gemm.hpp,
// gemm_micro.hpp, hemm.hpp): every kernel policy must agree with the naive
// triple-loop reference on every shape class the engine special-cases —
// empty/degenerate dims, single vectors, one tile, tile-edge remainders and
// multi-panel blocks — for all op combinations and scalar types, and the
// Hermitian-aware hemm must match gemm on a Hermitian operand. The solver
// round-trip at the bottom checks the policy is honored end to end: filter +
// Rayleigh-Ritz produce the same eigenpairs under every policy.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/gemm.hpp"
#include "la/gemm_policy.hpp"
#include "la/heevd.hpp"
#include "la/hemm.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::naive_gemm;
using chase::testing::random_hermitian;
using chase::testing::random_matrix;
using chase::testing::tol;

constexpr GemmKernel kPolicies[] = {GemmKernel::kNaive, GemmKernel::kBlocked,
                                    GemmKernel::kMicro};
constexpr Op kOps[] = {Op::kNoTrans, Op::kTrans, Op::kConjTrans};

template <typename T>
class GemmKernelsTyped : public ::testing::Test {};
TYPED_TEST_SUITE(GemmKernelsTyped, chase::testing::ScalarTypes);

TYPED_TEST(GemmKernelsTyped, AllPoliciesMatchNaiveAcrossShapeSweep) {
  using T = TypeParam;
  using R = RealType<T>;
  // One value per shape class: empty, single, sub-tile, around one register
  // tile, and several tiles with a remainder.
  const Index dims[] = {0, 1, 5, 63, 64, 65, 192};
  int combo = 0;
  for (Index m : dims) {
    for (Index n : dims) {
      for (Index k : dims) {
        // Rotate through op and alpha/beta combinations deterministically so
        // the full sweep stays fast while every pairing is exercised many
        // times across the shape grid.
        const Op opa = kOps[combo % 3];
        const Op opb = kOps[(combo / 3) % 3];
        const T alpha = (combo % 4 == 0) ? T(1) : T(R(0.75));
        const T beta = (combo % 2 == 0) ? T(0) : T(R(-0.5));
        ++combo;
        auto a = (opa == Op::kNoTrans) ? random_matrix<T>(m, k, 100 + combo)
                                       : random_matrix<T>(k, m, 100 + combo);
        auto b = (opb == Op::kNoTrans) ? random_matrix<T>(k, n, 200 + combo)
                                       : random_matrix<T>(n, k, 200 + combo);
        auto ref = random_matrix<T>(m, n, 300 + combo);
        auto got = clone(ref.cview());
        naive_gemm(alpha, opa, a.cview(), opb, b.cview(), beta, ref.view());
        const R t = tol<T>(R(30)) * R(std::max<Index>(k, 1));
        for (GemmKernel kern : kPolicies) {
          ScopedGemmKernel scoped(kern);
          auto c = clone(got.cview());
          gemm(alpha, opa, a.cview(), opb, b.cview(), beta, c.view());
          EXPECT_LE(max_abs_diff(c.cview(), ref.cview()), t)
              << gemm_kernel_name(kern) << " m=" << m << " n=" << n
              << " k=" << k << " opa=" << int(opa) << " opb=" << int(opb);
        }
      }
    }
  }
}

TYPED_TEST(GemmKernelsTyped, MicroBetaZeroOverwritesNaN) {
  using T = TypeParam;
  ScopedGemmKernel scoped(GemmKernel::kMicro);
  auto a = random_matrix<T>(65, 63, 1);
  auto b = random_matrix<T>(63, 65, 2);
  Matrix<T> c(65, 65), ref(65, 65);
  for (Index j = 0; j < 65; ++j) {
    for (Index i = 0; i < 65; ++i) {
      c(i, j) = T(std::numeric_limits<RealType<T>>::quiet_NaN());
    }
  }
  gemm(T(1), a.cview(), b.cview(), T(0), c.view());
  naive_gemm(T(1), Op::kNoTrans, a.cview(), Op::kNoTrans, b.cview(), T(0),
             ref.view());
  EXPECT_LE(max_abs_diff(c.cview(), ref.cview()),
            tol<T>(RealType<T>(4000)));
}

TYPED_TEST(GemmKernelsTyped, HemmMatchesGemmOnHermitianOperand) {
  using T = TypeParam;
  using R = RealType<T>;
  // hemm reads only the upper triangle under the micro policy; equality with
  // the full-storage gemm holds to rounding (not bitwise for complex types:
  // the compiler may contract the two inlined multiply-accumulate chains
  // differently), so the comparison is tolerance-based.
  const Index sizes[] = {1, 5, 64, 192, 200};
  const Index col_counts[] = {1, 7, 64, 481};
  for (Index n : sizes) {
    auto h = random_hermitian<T>(n, 40 + n);
    for (Index ncols : col_counts) {
      auto b = random_matrix<T>(n, ncols, 50 + ncols);
      const T alpha = T(R(1.25));
      const T beta = T(R(-0.5));
      auto ref = random_matrix<T>(n, ncols, 60);
      auto got = clone(ref.cview());
      {
        ScopedGemmKernel scoped(GemmKernel::kNaive);
        gemm(alpha, h.cview(), b.cview(), beta, ref.view());
      }
      for (GemmKernel kern : kPolicies) {
        ScopedGemmKernel scoped(kern);
        auto c = clone(got.cview());
        hemm(alpha, h.cview(), b.cview(), beta, c.view());
        EXPECT_LE(max_abs_diff(c.cview(), ref.cview()), tol<T>(R(30)) * R(n))
            << gemm_kernel_name(kern) << " n=" << n << " ncols=" << ncols;
      }
    }
  }
}

TYPED_TEST(GemmKernelsTyped, HemmReadsOnlyUpperTriangleUnderMicro) {
  using T = TypeParam;
  using R = RealType<T>;
  // Scribble NaN over the strict lower triangle: the micro hemm must still
  // produce the correct product from the upper triangle alone.
  const Index n = 130;
  auto h = random_hermitian<T>(n, 7);
  auto ref_h = clone(h.cview());
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < n; ++i) {
      h(i, j) = T(std::numeric_limits<R>::quiet_NaN());
    }
  }
  auto b = random_matrix<T>(n, 33, 8);
  Matrix<T> c(n, 33), ref(n, 33);
  {
    ScopedGemmKernel scoped(GemmKernel::kMicro);
    hemm(T(1), h.cview(), b.cview(), T(0), c.view());
  }
  naive_gemm(T(1), Op::kNoTrans, ref_h.cview(), Op::kNoTrans, b.cview(), T(0),
             ref.view());
  EXPECT_LE(max_abs_diff(c.cview(), ref.cview()), tol<T>(R(30)) * R(n));
}

TYPED_TEST(GemmKernelsTyped, GramMatchesExplicitProductUnderAllPolicies) {
  using T = TypeParam;
  using R = RealType<T>;
  auto x = random_matrix<T>(137, 61, 9);
  Matrix<T> ref(61, 61);
  naive_gemm(T(1), Op::kConjTrans, x.cview(), Op::kNoTrans, x.cview(), T(0),
             ref.view());
  for (GemmKernel kern : kPolicies) {
    ScopedGemmKernel scoped(kern);
    Matrix<T> c(61, 61);
    gram(x.cview(), c.view());
    EXPECT_LE(max_abs_diff(c.cview(), ref.cview()), tol<T>(R(30)) * R(137))
        << gemm_kernel_name(kern);
    // The mirrored result must be exactly Hermitian (POTRF's precondition).
    for (Index j = 0; j < 61; ++j) {
      for (Index i = 0; i < j; ++i) {
        EXPECT_EQ(c(j, i), conjugate(c(i, j)));
      }
    }
  }
}

TEST(GemmPolicy, ParseAndNames) {
  EXPECT_EQ(parse_gemm_kernel("naive"), GemmKernel::kNaive);
  EXPECT_EQ(parse_gemm_kernel("blocked"), GemmKernel::kBlocked);
  EXPECT_EQ(parse_gemm_kernel("micro"), GemmKernel::kMicro);
  EXPECT_FALSE(parse_gemm_kernel("turbo").has_value());
  EXPECT_FALSE(parse_gemm_kernel("").has_value());
  for (GemmKernel kern : kPolicies) {
    EXPECT_EQ(parse_gemm_kernel(gemm_kernel_name(kern)), kern);
  }
}

TEST(GemmPolicy, ScopedOverrideRestores) {
  const GemmKernel before = gemm_kernel();
  {
    ScopedGemmKernel scoped(GemmKernel::kNaive);
    EXPECT_EQ(gemm_kernel(), GemmKernel::kNaive);
    {
      ScopedGemmKernel inner(GemmKernel::kMicro);
      EXPECT_EQ(gemm_kernel(), GemmKernel::kMicro);
    }
    EXPECT_EQ(gemm_kernel(), GemmKernel::kNaive);
  }
  EXPECT_EQ(gemm_kernel(), before);
}

// End-to-end policy equivalence: the sequential Algorithm 2 driver (filter +
// CholeskyQR + Rayleigh-Ritz all riding the policy engine, with hemm on the
// 1x1 grid's diagonal rank) must produce the same eigenpairs under every
// kernel policy to solver tolerance.
template <typename T>
class GemmKernelsSolverTyped : public ::testing::Test {};
TYPED_TEST_SUITE(GemmKernelsSolverTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(GemmKernelsSolverTyped, SolverEigenpairsAgreeAcrossPolicies) {
  using T = TypeParam;
  const Index n = 120;
  auto eigs = gen::uniform_spectrum<double>(n, -2.0, 4.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 3);

  core::ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 6;
  cfg.tol = 1e-10;

  std::vector<core::ChaseResult<T>> results;
  for (GemmKernel kern : kPolicies) {
    ScopedGemmKernel scoped(kern);
    results.push_back(core::solve_sequential<T>(h.cview(), cfg));
    ASSERT_TRUE(results.back().converged) << gemm_kernel_name(kern);
  }
  const auto& ref = results.front();
  for (std::size_t p = 1; p < results.size(); ++p) {
    const auto& r = results[p];
    for (Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                  ref.eigenvalues[std::size_t(j)], 1e-8)
          << gemm_kernel_name(kPolicies[p]) << " pair " << j;
      // Eigenvectors agree up to phase: |<v_ref, v>| == 1. The spectrum is
      // uniform, so the wanted pairs are simple and this is well-defined.
      T ip(0);
      for (Index i = 0; i < n; ++i) {
        ip += conjugate(ref.eigenvectors(i, j)) * r.eigenvectors(i, j);
      }
      EXPECT_NEAR(abs_value(ip), 1.0, 1e-7)
          << gemm_kernel_name(kPolicies[p]) << " pair " << j;
    }
  }
}

}  // namespace
}  // namespace chase::la
