#include "la/heevd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <complex>

#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::la {
namespace {

using chase::testing::random_hermitian;
using chase::testing::tol;

template <typename T>
class HeevdTyped : public ::testing::Test {};
TYPED_TEST_SUITE(HeevdTyped, chase::testing::ScalarTypes);

/// Checks A V = V diag(w) and V^H V = I for the computed decomposition.
template <typename T>
void expect_valid_eigendecomposition(ConstMatrixView<T> a,
                                     const std::vector<RealType<T>>& w,
                                     ConstMatrixView<T> v,
                                     RealType<T> scale) {
  using R = RealType<T>;
  const Index n = a.rows();
  Matrix<T> av(n, n);
  gemm(T(1), a, v, T(0), av.view());
  Matrix<T> vl = clone(v);
  for (Index j = 0; j < n; ++j) {
    scal(n, T(w[std::size_t(j)]), vl.col(j));
  }
  EXPECT_LE(max_abs_diff(av.cview(), vl.cview()), tol<T>(R(3000)) * scale);
  EXPECT_LE(orthogonality_error(v), tol<T>(R(200)) * std::sqrt(R(n)));
  EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
}

TYPED_TEST(HeevdTyped, RandomHermitian) {
  using T = TypeParam;
  const Index n = 48;
  auto a = random_hermitian<T>(n, 1);
  auto work = clone(a.cview());
  std::vector<RealType<T>> w;
  Matrix<T> v(n, n);
  heevd(work.view(), w, v.view());
  expect_valid_eigendecomposition(a.cview(), w, v.cview(), RealType<T>(n));
}

TYPED_TEST(HeevdTyped, DiagonalMatrix) {
  using T = TypeParam;
  const Index n = 12;
  Matrix<T> a(n, n);
  for (Index j = 0; j < n; ++j) a(j, j) = T(RealType<T>(n - j));
  auto work = clone(a.cview());
  std::vector<RealType<T>> w;
  Matrix<T> v(n, n);
  heevd(work.view(), w, v.view());
  for (Index j = 0; j < n; ++j) {
    EXPECT_NEAR(double(w[std::size_t(j)]), double(j + 1), double(tol<T>()));
  }
}

TYPED_TEST(HeevdTyped, SmallSizes) {
  using T = TypeParam;
  for (Index n : {1, 2, 3}) {
    auto a = random_hermitian<T>(n, 100 + std::uint64_t(n));
    auto work = clone(a.cview());
    std::vector<RealType<T>> w;
    Matrix<T> v(n, n);
    heevd(work.view(), w, v.view());
    expect_valid_eigendecomposition(a.cview(), w, v.cview(), RealType<T>(4));
  }
}

TYPED_TEST(HeevdTyped, ClusteredEigenvalues) {
  using T = TypeParam;
  // Spectrum with a tight cluster: QL must still converge and the invariant
  // subspace must be orthonormal even if individual vectors are ill-defined.
  const Index n = 30;
  Matrix<T> d(n, n);
  for (Index j = 0; j < n; ++j) {
    d(j, j) = (j < 5) ? T(RealType<T>(1) + RealType<T>(j) * tol<T>(1))
                      : T(RealType<T>(j));
  }
  // Conjugate by a random unitary from heevd of a random Hermitian matrix.
  auto h = random_hermitian<T>(n, 7);
  std::vector<RealType<T>> wtmp;
  Matrix<T> u(n, n);
  heevd(h.view(), wtmp, u.view());
  Matrix<T> tmp(n, n), a(n, n);
  gemm(T(1), u.cview(), d.cview(), T(0), tmp.view());
  gemm(T(1), Op::kNoTrans, tmp.cview(), Op::kConjTrans, u.cview(), T(0),
       a.view());
  // Re-Hermitize after rounding.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      const T avg = (a(i, j) + conjugate(a(j, i))) / RealType<T>(2);
      a(i, j) = avg;
      a(j, i) = conjugate(avg);
    }
    a(j, j) = T(real_part(a(j, j)));
  }
  auto work = clone(a.cview());
  std::vector<RealType<T>> w;
  Matrix<T> v(n, n);
  heevd(work.view(), w, v.view());
  expect_valid_eigendecomposition(a.cview(), w, v.cview(), RealType<T>(n));
}

TEST(Heevd, WilkinsonW21KnownPairing) {
  // Wilkinson's W21+ matrix: pairs of close eigenvalues; classic hard case.
  const Index n = 21;
  Matrix<double> a(n, n);
  for (Index i = 0; i < n; ++i) a(i, i) = std::abs(double(i) - 10.0);
  for (Index i = 0; i < n - 1; ++i) {
    a(i, i + 1) = 1.0;
    a(i + 1, i) = 1.0;
  }
  auto work = clone(a.cview());
  std::vector<double> w;
  Matrix<double> v(n, n);
  heevd(work.view(), w, v.view());
  // Largest eigenvalue of W21+ is about 10.746; the top two nearly coincide.
  EXPECT_NEAR(w[20], 10.746194182903393, 1e-10);
  EXPECT_NEAR(w[19], 10.746194182903322, 1e-9);
  expect_valid_eigendecomposition(a.cview(), w, v.cview(), 20.0);
}

TEST(Heevd, ClementMatrixIntegerSpectrum) {
  // Clement matrix of size n has eigenvalues -(n-1), -(n-3), ..., (n-1).
  const Index n = 11;
  Matrix<double> a(n, n);
  for (Index i = 0; i < n - 1; ++i) {
    const double v = std::sqrt(double((i + 1) * (n - 1 - i)));
    a(i, i + 1) = v;
    a(i + 1, i) = v;
  }
  auto work = clone(a.cview());
  std::vector<double> w;
  Matrix<double> vv(n, n);
  heevd(work.view(), w, vv.view());
  for (Index j = 0; j < n; ++j) {
    EXPECT_NEAR(w[std::size_t(j)], double(2 * j) - double(n - 1), 1e-10);
  }
}

TYPED_TEST(HeevdTyped, TridiagonalizationPreservesSpectrumShape) {
  using T = TypeParam;
  const Index n = 25;
  auto a = random_hermitian<T>(n, 9);
  auto work = clone(a.cview());
  std::vector<RealType<T>> d, e;
  Matrix<T> q(n, n);
  hetrd_lower(work.view(), d, e, q.view());
  // Q must be unitary and Q T Q^H must reproduce A.
  EXPECT_LE(orthogonality_error(q.cview()), tol<T>(RealType<T>(200)));
  Matrix<T> t(n, n);
  for (Index j = 0; j < n; ++j) t(j, j) = T(d[std::size_t(j)]);
  for (Index j = 0; j < n - 1; ++j) {
    t(j + 1, j) = T(e[std::size_t(j)]);
    t(j, j + 1) = T(e[std::size_t(j)]);
  }
  Matrix<T> qt(n, n), rec(n, n);
  gemm(T(1), q.cview(), t.cview(), T(0), qt.view());
  gemm(T(1), Op::kNoTrans, qt.cview(), Op::kConjTrans, q.cview(), T(0),
       rec.view());
  EXPECT_LE(max_abs_diff(rec.cview(), a.cview()),
            tol<T>(RealType<T>(2000)));
}

}  // namespace
}  // namespace chase::la
