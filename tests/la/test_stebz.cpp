#include "la/stebz.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/heevd.hpp"
#include "la/norms.hpp"

namespace chase::la {
namespace {

std::pair<std::vector<double>, std::vector<double>> random_tridiag(
    Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) d[std::size_t(i)] = rng.uniform(-2.0, 2.0);
  for (Index i = 0; i + 1 < n; ++i) e[std::size_t(i)] = rng.uniform(-1.0, 1.0);
  return {d, e};
}

/// Reference: all eigenvalues via the QL path.
std::vector<double> all_eigs(std::vector<double> d, std::vector<double> e) {
  Matrix<double> z(Index(d.size()), Index(d.size()));
  set_identity(z.view());
  EXPECT_TRUE(steql(d, e, z.view()));
  std::sort(d.begin(), d.end());
  return d;
}

TEST(Stebz, BisectionMatchesQlLowestEigenvalues) {
  for (Index n : {4, 17, 60}) {
    for (std::uint64_t seed : {1u, 2u}) {
      auto [d, e] = random_tridiag(n, seed);
      auto ref = all_eigs(d, e);
      const Index k = std::min<Index>(n, 7);
      auto lo = tridiag_lowest_eigenvalues(d, e, k);
      for (Index j = 0; j < k; ++j) {
        EXPECT_NEAR(lo[std::size_t(j)], ref[std::size_t(j)], 1e-11)
            << "n=" << n << " seed=" << seed << " j=" << j;
      }
    }
  }
}

TEST(Stebz, SturmCountOnClementSpectrum) {
  // Clement n=11: eigenvalues -10, -8, ..., 10 — exact counts at midpoints.
  const Index n = 11;
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i + 1 < n; ++i) {
    e[std::size_t(i)] = std::sqrt(double((i + 1) * (n - 1 - i)));
  }
  EXPECT_EQ(stebz_detail::sturm_count(d, e, -11.0), 0);
  EXPECT_EQ(stebz_detail::sturm_count(d, e, -9.0), 1);
  EXPECT_EQ(stebz_detail::sturm_count(d, e, 0.5), 6);
  EXPECT_EQ(stebz_detail::sturm_count(d, e, 11.0), 11);
}

TEST(Stebz, EigenpairsSatisfyTheTridiagonalEquation) {
  const Index n = 80, k = 10;
  auto [d, e] = random_tridiag(n, 5);
  std::vector<double> w;
  Matrix<double> z(n, k);
  tridiag_lowest_eigenpairs(d, e, k, w, z.view());

  EXPECT_LE(orthogonality_error(z.cview()), 1e-10);
  for (Index j = 0; j < k; ++j) {
    double err = 0;
    for (Index i = 0; i < n; ++i) {
      double acc = d[std::size_t(i)] * z(i, j) - w[std::size_t(j)] * z(i, j);
      if (i > 0) acc += e[std::size_t(i - 1)] * z(i - 1, j);
      if (i + 1 < n) acc += e[std::size_t(i)] * z(i + 1, j);
      err += acc * acc;
    }
    EXPECT_LE(std::sqrt(err), 1e-9) << "pair " << j;
  }
}

TEST(Stebz, ClusteredEigenvaluesStayOrthogonal) {
  // Wilkinson W21+: the top pairs agree to ~1e-13; ask for the bottom pairs
  // plus the near-degenerate ones and check orthogonality survives.
  const Index n = 21;
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i < n; ++i) d[std::size_t(i)] = std::abs(double(i) - 10.0);
  e[std::size_t(n - 1)] = 0.0;

  std::vector<double> w;
  Matrix<double> z(n, n);
  tridiag_lowest_eigenpairs(d, e, n, w, z.view());
  EXPECT_LE(orthogonality_error(z.cview()), 1e-9);
  EXPECT_NEAR(w.back(), 10.746194182903393, 1e-9);
}

TEST(Stebz, DiagonalMatrixExact) {
  std::vector<double> d = {5.0, 1.0, 3.0, -2.0};
  std::vector<double> e = {0.0, 0.0, 0.0, 0.0};
  auto lo = tridiag_lowest_eigenvalues(d, e, 2);
  EXPECT_NEAR(lo[0], -2.0, 1e-12);
  EXPECT_NEAR(lo[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace chase::la
