// CHASE_TOPO spec parsing, node assignment, and the collapsed TopoInfo the
// collective selector consumes — plus the runtime side: a Team picking up
// the process topology and split() children inheriting their members' node
// assignments.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/topology.hpp"
#include "common/env.hpp"

namespace chase::comm {
namespace {

using la::Index;

TEST(ParseTopology, FlatForms) {
  EXPECT_TRUE(parse_topology("CHASE_TOPO", "flat").flat());
  EXPECT_TRUE(parse_topology("CHASE_TOPO", "  flat  ").flat());
  // Grid form is never "flat", even with a single node group.
  EXPECT_FALSE(parse_topology("CHASE_TOPO", "1x4").flat());
}

TEST(ParseTopology, GridForm) {
  const Topology t = parse_topology("CHASE_TOPO", "2x4");
  EXPECT_FALSE(t.flat());
  EXPECT_EQ(t.grid_nodes, 2);
  EXPECT_EQ(t.grid_per_node, 4);
  EXPECT_TRUE(t.node_of.empty());
  EXPECT_EQ(t.inter_bw, 0.0);
  EXPECT_EQ(t.inter_latency, 0.0);
}

TEST(ParseTopology, ExplicitList) {
  const Topology t = parse_topology("CHASE_TOPO", "0,0,0,1,1,1,1,1");
  EXPECT_FALSE(t.flat());
  EXPECT_EQ(t.grid_nodes, 0);
  ASSERT_EQ(t.node_of.size(), 8u);
  EXPECT_EQ(t.node_of[2], 0);
  EXPECT_EQ(t.node_of[3], 1);
}

TEST(ParseTopology, Qualifiers) {
  const Topology t =
      parse_topology("CHASE_TOPO", "2x4@inter_mbps=800@inter_us=30");
  EXPECT_EQ(t.grid_nodes, 2);
  EXPECT_DOUBLE_EQ(t.inter_bw, 800.0e6);
  EXPECT_DOUBLE_EQ(t.inter_latency, 30.0e-6);
  // inter_mbps=0 disables the delay emulation but keeps the grouping.
  const Topology nodelay = parse_topology("CHASE_TOPO", "2x4@inter_mbps=0");
  EXPECT_EQ(nodelay.grid_nodes, 2);
  EXPECT_EQ(nodelay.inter_bw, 0.0);
}

TEST(ParseTopology, MalformedSpecsThrowConfigError) {
  for (const char* bad :
       {"", "2x", "x4", "2x4x8", "banana", "0x4", "2x0", "-2x4", "0,,1",
        "0,-1", "2x4@inter_mbps", "2x4@inter_mbps=fast", "2x4@warp=9",
        "2x4@inter_us=-3", "1,2,three"}) {
    EXPECT_THROW(parse_topology("CHASE_TOPO", bad), env::ConfigError)
        << "spec: \"" << bad << "\"";
  }
}

TEST(ParseTopology, ErrorNamesVariableAndSpec) {
  try {
    parse_topology("CHASE_TOPO", "2x4@warp=9");
    FAIL() << "expected ConfigError";
  } catch (const env::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHASE_TOPO"), std::string::npos) << what;
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
  }
}

TEST(NodeAssignment, GridExpandsOnExactSizeOnly) {
  const Topology t = parse_topology("CHASE_TOPO", "2x4");
  const std::vector<int> want = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(node_assignment(t, 8), want);
  // Any other team size runs flat — a 2x4 spec says nothing about it.
  EXPECT_TRUE(node_assignment(t, 4).empty());
  EXPECT_TRUE(node_assignment(t, 12).empty());
}

TEST(NodeAssignment, ListAppliesOnExactSizeOnly) {
  const Topology t = parse_topology("CHASE_TOPO", "0,0,1,1");
  EXPECT_EQ(node_assignment(t, 4), t.node_of);
  EXPECT_TRUE(node_assignment(t, 3).empty());
  EXPECT_TRUE(node_assignment(t, 8).empty());
}

TEST(NodeAssignment, FlatIsAlwaysEmpty) {
  const Topology t = parse_topology("CHASE_TOPO", "flat");
  EXPECT_TRUE(node_assignment(t, 8).empty());
}

TEST(TopoInfoOf, FlatShape) {
  const perf::TopoInfo info = topo_info_of({}, 0.0, 0.0);
  EXPECT_EQ(info.nodes, 1);
  EXPECT_EQ(info.max_per_node, 1);
  EXPECT_FALSE(info.grouped());
}

TEST(TopoInfoOf, GroupedShapes) {
  const perf::TopoInfo even = topo_info_of({0, 0, 1, 1}, 5.0e8, 1.0e-5);
  EXPECT_EQ(even.nodes, 2);
  EXPECT_EQ(even.max_per_node, 2);
  EXPECT_TRUE(even.contiguous);
  EXPECT_TRUE(even.grouped());
  EXPECT_DOUBLE_EQ(even.inter_bw, 5.0e8);
  EXPECT_DOUBLE_EQ(even.inter_latency, 1.0e-5);

  const perf::TopoInfo uneven = topo_info_of({0, 0, 0, 1, 1, 1, 1, 1}, 0, 0);
  EXPECT_EQ(uneven.nodes, 2);
  EXPECT_EQ(uneven.max_per_node, 5);
  EXPECT_TRUE(uneven.grouped());

  const perf::TopoInfo single = topo_info_of({0, 0, 0, 0}, 0, 0);
  EXPECT_EQ(single.nodes, 1);
  EXPECT_EQ(single.max_per_node, 4);
  EXPECT_FALSE(single.grouped());
}

TEST(TopoInfoOf, InterleavedIsNotHierCapable) {
  // A node id recurring after its run ended breaks contiguity; the selector
  // must not route two-level algorithms over it.
  const perf::TopoInfo info = topo_info_of({0, 1, 0, 1}, 0, 0);
  EXPECT_EQ(info.nodes, 2);
  EXPECT_FALSE(info.contiguous);
  EXPECT_FALSE(info.grouped());
}

TEST(ScopedTopologyOverride, AppliesAndRestores) {
  const Topology before = current_topology();
  {
    ScopedTopology topo(parse_topology("CHASE_TOPO", "2x2"));
    EXPECT_EQ(current_topology().grid_nodes, 2);
    EXPECT_EQ(current_topology().grid_per_node, 2);
  }
  EXPECT_EQ(current_topology().grid_nodes, before.grid_nodes);
  EXPECT_EQ(current_topology().node_of, before.node_of);
}

TEST(TeamTopology, WorldPicksUpProcessTopology) {
  ScopedTopology topo(parse_topology("CHASE_TOPO", "2x2@inter_us=5"));
  Team team(4);
  team.run([](Communicator& comm) {
    const auto& info = comm.topo_info();
    EXPECT_TRUE(info.grouped());
    EXPECT_EQ(info.nodes, 2);
    EXPECT_EQ(info.max_per_node, 2);
    EXPECT_DOUBLE_EQ(info.inter_latency, 5.0e-6);
    ASSERT_EQ(comm.node_ids().size(), 4u);
    EXPECT_EQ(comm.node_ids()[std::size_t(comm.rank())], comm.rank() / 2);
  });
}

TEST(TeamTopology, MismatchedTeamSizeRunsFlat) {
  ScopedTopology topo(parse_topology("CHASE_TOPO", "2x4"));
  Team team(3);
  team.run([](Communicator& comm) {
    EXPECT_FALSE(comm.topo_info().grouped());
    EXPECT_TRUE(comm.node_ids().empty());
  });
}

TEST(TeamTopology, SplitChildrenInheritNodeAssignments) {
  ScopedTopology topo(parse_topology("CHASE_TOPO", "2x4"));
  Team team(8);
  team.run([](Communicator& comm) {
    const int r = comm.rank();
    // Grid2d's column communicators under a 2x4 grid over 2x4 nodes: column
    // comms span both nodes ({c, c+4}), row comms stay inside one node.
    Grid2d grid(comm, 2, 4);
    const auto& col = grid.col_comm().topo_info();
    EXPECT_TRUE(col.grouped());
    EXPECT_EQ(col.nodes, 2);
    EXPECT_EQ(col.max_per_node, 1);
    const auto& row = grid.row_comm().topo_info();
    EXPECT_FALSE(row.grouped());
    EXPECT_EQ(row.nodes, 1);
    // Every-other-rank children keep a grouped shape: the members' node ids
    // still form contiguous runs ({0,2,4,6} -> nodes {0,0,1,1}).
    Communicator stripes = comm.split(r % 2, r);
    const auto& info = stripes.topo_info();
    EXPECT_EQ(info.nodes, 2);
    EXPECT_TRUE(info.grouped());
    Communicator pairs = comm.split(r % 4, r);  // {0,4},{1,5},... cross-node
    EXPECT_EQ(pairs.topo_info().nodes, 2);
    EXPECT_EQ(pairs.topo_info().max_per_node, 1);
  });
}

}  // namespace
}  // namespace chase::comm
