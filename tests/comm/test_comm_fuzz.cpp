// Randomized stress test of the SPMD runtime: long random sequences of
// collectives (mixed kinds, sizes, roots, sub-communicators) executed
// concurrently by all ranks, each checked against a sequential oracle.
// Guards the barrier/slot reuse protocol against ordering races (the kind of
// bug that once lived in split()).
#include <gtest/gtest.h>

#include <vector>

#include "comm/communicator.hpp"
#include "common/rng.hpp"

namespace chase::comm {
namespace {

struct Step {
  enum Kind { kAllReduce, kBcast, kAllGather, kBarrier, kSplitReduce };
  Kind kind;
  int count;   // payload elements
  int root;    // bcast root
  int color_mod;  // split grouping for kSplitReduce
};

std::vector<Step> random_plan(int steps, int nranks, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Step> plan;
  for (int i = 0; i < steps; ++i) {
    Step s{};
    const auto r = rng.next_u64();
    s.kind = Step::Kind(r % 5);
    s.count = 1 + int(rng.next_u64() % 17);
    s.root = int(rng.next_u64() % std::uint64_t(nranks));
    s.color_mod = 1 + int(rng.next_u64() % 3);
    plan.push_back(s);
  }
  return plan;
}

/// Value rank r contributes at step i, element e (deterministic).
double contribution(int r, int i, int e) {
  return double((r + 1) * 131 + i * 17 + e * 7 % 1000) * 0.5;
}

TEST(CommFuzz, RandomCollectiveSequencesMatchOracle) {
  for (int nranks : {2, 3, 5}) {
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      const auto plan = random_plan(60, nranks, seed);
      Team team(nranks);
      team.run([&](Communicator& comm) {
        const int me = comm.rank();
        for (int i = 0; i < int(plan.size()); ++i) {
          const Step& s = plan[std::size_t(i)];
          switch (s.kind) {
            case Step::kAllReduce: {
              std::vector<double> x(std::size_t(s.count));
              for (int e = 0; e < s.count; ++e) {
                x[std::size_t(e)] = contribution(me, i, e);
              }
              comm.all_reduce(x.data(), s.count);
              for (int e = 0; e < s.count; ++e) {
                double expect = 0;
                for (int r = 0; r < nranks; ++r) {
                  expect += contribution(r, i, e);
                }
                ASSERT_DOUBLE_EQ(x[std::size_t(e)], expect)
                    << "step " << i << " elem " << e;
              }
              break;
            }
            case Step::kBcast: {
              std::vector<double> x(std::size_t(s.count));
              for (int e = 0; e < s.count; ++e) {
                x[std::size_t(e)] =
                    me == s.root ? contribution(s.root, i, e) : -1.0;
              }
              comm.broadcast(x.data(), s.count, s.root);
              for (int e = 0; e < s.count; ++e) {
                ASSERT_DOUBLE_EQ(x[std::size_t(e)],
                                 contribution(s.root, i, e));
              }
              break;
            }
            case Step::kAllGather: {
              std::vector<double> mine(std::size_t(s.count));
              for (int e = 0; e < s.count; ++e) {
                mine[std::size_t(e)] = contribution(me, i, e);
              }
              std::vector<double> all(std::size_t(s.count * nranks));
              comm.all_gather(mine.data(), s.count, all.data());
              for (int r = 0; r < nranks; ++r) {
                for (int e = 0; e < s.count; ++e) {
                  ASSERT_DOUBLE_EQ(all[std::size_t(r * s.count + e)],
                                   contribution(r, i, e));
                }
              }
              break;
            }
            case Step::kBarrier:
              comm.barrier();
              break;
            case Step::kSplitReduce: {
              // Split by color, reduce within the group, verify group sum.
              Communicator sub = comm.split(me % s.color_mod, me);
              double x = contribution(me, i, 0);
              sub.all_reduce(&x, 1);
              double expect = 0;
              for (int r = me % s.color_mod; r < nranks; r += s.color_mod) {
                expect += contribution(r, i, 0);
              }
              ASSERT_DOUBLE_EQ(x, expect) << "step " << i;
              break;
            }
          }
        }
      });
    }
  }
}

}  // namespace
}  // namespace chase::comm
