// Collective-safe error propagation: the poisoned-barrier protocol, the
// barrier watchdog, the fault-injection registry, and the split()
// generation-keyed child cache.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <complex>
#include <cstdlib>
#include <limits>
#include <vector>

#include "comm/communicator.hpp"
#include "common/faultinject.hpp"

namespace chase::comm {
namespace {

// Keep watchdog-sensitive tests snappy: long enough that healthy ranks never
// trip it, short enough that a genuinely dead rank is detected quickly.
constexpr auto kTestTimeout = std::chrono::milliseconds(2000);

TEST(FaultInject, ArmFireDisarm) {
  fault::Scoped armed("unit.site", /*rank=*/-1, /*times=*/2);
  EXPECT_TRUE(fault::fired("unit.site"));
  EXPECT_TRUE(fault::fired("unit.site"));
  EXPECT_FALSE(fault::fired("unit.site"));  // budget exhausted
  EXPECT_FALSE(fault::fired("other.site"));
  EXPECT_EQ(fault::fire_count("unit.site"), 2);
}

TEST(FaultInject, RankFilterAndPerRankBudgets) {
  fault::Scoped armed("unit.site", /*rank=*/1, /*times=*/1);
  fault::set_thread_rank(0);
  EXPECT_FALSE(fault::fired("unit.site"));
  fault::set_thread_rank(1);
  EXPECT_TRUE(fault::fired("unit.site"));
  EXPECT_FALSE(fault::fired("unit.site"));
  fault::set_thread_rank(0);
}

TEST(FaultInject, WildcardRankFiresIndependentlyPerRank) {
  // rank -1 with times=1 must fire exactly once on EVERY rank — that is what
  // keeps SPMD control flow collective-consistent under injection.
  fault::Scoped armed("unit.site", /*rank=*/-1, /*times=*/1);
  for (int r = 0; r < 4; ++r) {
    fault::set_thread_rank(r);
    EXPECT_TRUE(fault::fired("unit.site")) << "rank " << r;
    EXPECT_FALSE(fault::fired("unit.site")) << "rank " << r;
  }
  fault::set_thread_rank(0);
  EXPECT_EQ(fault::fire_count("unit.site"), 4);
}

TEST(FaultTolerance, RankDieInCollectiveIsReportedNotDeadlocked) {
  // The acceptance scenario: rank 2 of a 4-rank team dies entering a
  // collective. Siblings must unblock (no deadlock), the process must
  // survive (no abort), and Team::run must rethrow the originating rank's
  // error with the site name.
  ScopedBarrierTimeout fast(kTestTimeout);
  fault::Scoped armed("rank.die", /*rank=*/2, /*times=*/1);
  Team team(4);
  try {
    team.run([](Communicator& comm) {
      double x = 1.0;
      comm.all_reduce(&x, 1);  // rank 2 dies here; others must not hang
      comm.barrier();
      comm.all_reduce(&x, 1);
    });
    FAIL() << "expected TeamAborted";
  } catch (const TeamAborted& e) {
    EXPECT_EQ(e.error().rank, 2);
    EXPECT_EQ(e.error().site, "rank.die");
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  }
}

TEST(FaultTolerance, SubsequentTeamRunsCleanly) {
  // After an aborted team, fresh Teams in the same process must work — both
  // a brand-new Team object and a second run() of the same Team.
  ScopedBarrierTimeout fast(kTestTimeout);
  Team team(4);
  {
    fault::Scoped armed("rank.die", /*rank=*/2, /*times=*/1);
    EXPECT_THROW(team.run([](Communicator& comm) { comm.barrier(); }),
                 TeamAborted);
  }
  std::atomic<int> sum{0};
  team.run([&](Communicator& comm) {
    int x = comm.rank();
    comm.all_reduce(&x, 1);
    sum.fetch_add(x);
  });
  EXPECT_EQ(sum.load(), 4 * 6);  // every rank sees 0+1+2+3

  Team fresh(3);
  std::atomic<int> hits{0};
  fresh.run([&](Communicator& comm) {
    comm.barrier();
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 3);
}

TEST(FaultTolerance, RankExceptionCarriesOriginalMessage) {
  ScopedBarrierTimeout fast(kTestTimeout);
  Team team(3);
  try {
    team.run([](Communicator& comm) {
      if (comm.rank() == 1) throw Error("disk on fire");
      comm.barrier();
    });
    FAIL() << "expected TeamAborted";
  } catch (const TeamAborted& e) {
    EXPECT_EQ(e.error().rank, 1);
    EXPECT_NE(e.error().message.find("disk on fire"), std::string::npos);
  }
}

TEST(FaultTolerance, SilentDeathOutsideCollectiveTripsWatchdog) {
  // A rank that returns early without throwing never records anything; the
  // longest-waiting sibling's watchdog must detect it instead of hanging.
  ScopedBarrierTimeout fast(std::chrono::milliseconds(300));
  Team team(3);
  try {
    team.run([](Communicator& comm) {
      if (comm.rank() == 0) return;  // dies silently
      comm.barrier();
    });
    FAIL() << "expected TeamAborted";
  } catch (const TeamAborted& e) {
    EXPECT_EQ(e.error().site, "barrier.watchdog");
  }
}

TEST(FaultTolerance, PoisonCrossesSplitCommunicators) {
  // Death inside a child communicator must unblock ranks waiting on the
  // parent (and vice versa): the whole communicator tree shares one
  // ErrorState.
  ScopedBarrierTimeout fast(kTestTimeout);
  // skip=1 lets rank 3 survive the rank.die check at split() entry so the
  // death lands inside the *child* collective.
  fault::Scoped armed("rank.die", /*rank=*/3, /*times=*/1, /*skip=*/1);
  Team team(4);
  try {
    team.run([](Communicator& comm) {
      Communicator half = comm.split(comm.rank() / 2, comm.rank());
      double x = 1.0;
      if (comm.rank() == 3) {
        half.all_reduce(&x, 1);  // dies in the child collective
      } else {
        comm.barrier();  // waits on the parent
      }
    });
    FAIL() << "expected TeamAborted";
  } catch (const TeamAborted& e) {
    EXPECT_EQ(e.error().rank, 3);
    EXPECT_EQ(e.error().site, "rank.die");
  }
}

TEST(FaultTolerance, CollectiveMismatchIsDiagnosedNotFatal) {
  // Divergent SPMD control flow (one rank calls broadcast while the others
  // call all_reduce) used to abort the process; now it must poison the team
  // with a diagnosable error.
  ScopedBarrierTimeout fast(kTestTimeout);
  Team team(3);
  try {
    team.run([](Communicator& comm) {
      double x = 1.0;
      if (comm.rank() == 2) {
        comm.broadcast(&x, 1, 0);
      } else {
        comm.all_reduce(&x, 1);
      }
    });
    FAIL() << "expected TeamAborted";
  } catch (const TeamAborted& e) {
    EXPECT_EQ(e.error().site, "collective.mismatch");
  }
}

TEST(FaultTolerance, AllReduceCorruptInjectsNaN) {
  fault::Scoped armed("allreduce.corrupt", /*rank=*/-1, /*times=*/1);
  Team team(4);
  std::vector<double> results(4, 0.0);
  team.run([&](Communicator& comm) {
    std::vector<double> x = {1.0, 2.0};
    comm.all_reduce(x.data(), 2);
    results[std::size_t(comm.rank())] = x[0];
    EXPECT_DOUBLE_EQ(x[1], 8.0);  // only element 0 is corrupted
  });
  for (double r : results) EXPECT_TRUE(std::isnan(r));
}

TEST(FaultTolerance, EnvArmsSites) {
  // The env plumbing: site[@rank][:times] entries, comma separated. The
  // registry singleton already consumed the process env, so parse through a
  // fresh Registry via its public surface: arm programmatically with the
  // same syntax semantics is covered above; here check load_env parsing.
  fault::detail::Registry reg;
  EXPECT_TRUE(reg.sites.empty());
  // Simulate: parsing is exercised through a locally-set env + load_env.
  ::setenv("CHASE_FAULT_INJECT", "potrf.breakdown@1:3,filter.nan", 1);
  reg.load_env();
  ::unsetenv("CHASE_FAULT_INJECT");
  ASSERT_EQ(reg.sites.size(), 2u);
  EXPECT_EQ(reg.sites[0].name, "potrf.breakdown");
  EXPECT_EQ(reg.sites[0].rank, 1);
  EXPECT_EQ(reg.sites[0].times, 3);
  EXPECT_EQ(reg.sites[1].name, "filter.nan");
  EXPECT_EQ(reg.sites[1].rank, -1);
  EXPECT_EQ(reg.sites[1].times, 1);
}

TEST(Split, SameColorAcrossCallsGetsFreshState) {
  // Regression: split_children used to be keyed by color alone, so a second
  // split() with the same color could observe a stale child CommState. With
  // generation keying the two children must be distinct, correctly sized,
  // and independently functional.
  Team team(4);
  team.run([](Communicator& comm) {
    // First split: pairs {0,1} and {2,3}.
    Communicator a = comm.split(comm.rank() / 2, comm.rank());
    // Second split, same colors but different membership: {0,3} and {1,2}.
    const int color2 = (comm.rank() == 0 || comm.rank() == 3) ? 0 : 1;
    Communicator b = comm.split(color2, comm.rank());
    EXPECT_EQ(a.size(), 2);
    EXPECT_EQ(b.size(), 2);
    double xa = 1.0, xb = double(comm.rank());
    a.all_reduce(&xa, 1);
    b.all_reduce(&xb, 1);
    EXPECT_DOUBLE_EQ(xa, 2.0);
    EXPECT_DOUBLE_EQ(xb, 3.0);  // {0,3} and {1,2} both sum to 3
    // Both stay usable after further splits.
    Communicator c = comm.split(0, comm.rank());
    EXPECT_EQ(c.size(), 4);
    double xc = 1.0;
    c.all_reduce(&xc, 1);
    EXPECT_DOUBLE_EQ(xc, 4.0);
    a.barrier();
    b.barrier();
  });
}

TEST(AllGatherAccounting, RecordsTotalGatheredBytes) {
  // The Figure 2/3 communication-volume model prices the *total* gathered
  // payload; the event must record size()*count*sizeof(T), not the local
  // contribution.
  const int p = 4;
  std::vector<perf::Tracker> trackers(p);
  Team team(p);
  team.run(
      [&](Communicator& comm) {
        std::vector<double> mine(3, double(comm.rank()));
        std::vector<double> all(std::size_t(3 * p));
        comm.all_gather(mine.data(), 3, all.data());

        std::vector<Index> counts = {1, 2, 3, 4};
        std::vector<Index> displs = {0, 1, 3, 6};
        std::vector<double> vmine(std::size_t(comm.rank() + 1), 1.0);
        std::vector<double> vall(10);
        comm.all_gather_v(vmine.data(), comm.rank() + 1, vall.data(), counts,
                          displs);
      },
      &trackers);
  for (int r = 0; r < p; ++r) {
    const auto& colls = trackers[std::size_t(r)].collectives();
    ASSERT_EQ(colls.size(), 2u) << "rank " << r;
    EXPECT_EQ(colls[0].bytes, std::size_t(p) * 3 * sizeof(double));
    EXPECT_EQ(colls[1].bytes, std::size_t(10) * sizeof(double));
  }
}

TEST(Counters, BumpAndMergeMax) {
  perf::Tracker a, b;
  a.bump("qr.hhqr_fallback");
  a.bump("qr.hhqr_fallback");
  b.bump("qr.hhqr_fallback");
  b.bump("filter.nan_recovery", 3);
  EXPECT_DOUBLE_EQ(a.counter("qr.hhqr_fallback"), 2.0);
  EXPECT_DOUBLE_EQ(a.counter("nope"), 0.0);
  a.merge_max_times(b);
  EXPECT_DOUBLE_EQ(a.counter("qr.hhqr_fallback"), 2.0);   // max(2, 1)
  EXPECT_DOUBLE_EQ(a.counter("filter.nan_recovery"), 3.0);  // adopted
}

}  // namespace
}  // namespace chase::comm
