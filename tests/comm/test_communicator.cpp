#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <numeric>
#include <vector>

namespace chase::comm {
namespace {

TEST(Team, RunsEveryRankExactlyOnce) {
  const int p = 5;
  std::vector<std::atomic<int>> hits(p);
  Team team(p);
  team.run([&](Communicator& comm) {
    hits[std::size_t(comm.rank())].fetch_add(1);
    EXPECT_EQ(comm.size(), p);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, SingleRankWorld) {
  Team team(1);
  team.run([](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    double x = 3.0;
    comm.all_reduce(&x, 1);
    EXPECT_EQ(x, 3.0);
    comm.barrier();
  });
}

TEST(Team, RethrowsRankException) {
  Team team(3);
  EXPECT_THROW(
      team.run([](Communicator&) { throw Error("symmetric failure"); }),
      Error);
}

TEST(Collectives, AllReduceSum) {
  for (int p : {2, 3, 4, 7, 8}) {
    Team team(p);
    team.run([&](Communicator& comm) {
      std::vector<double> x = {double(comm.rank()), 1.0,
                               double(comm.rank() * comm.rank())};
      comm.all_reduce(x.data(), 3);
      double s0 = 0, s2 = 0;
      for (int r = 0; r < p; ++r) {
        s0 += r;
        s2 += double(r) * r;
      }
      EXPECT_DOUBLE_EQ(x[0], s0);
      EXPECT_DOUBLE_EQ(x[1], double(p));
      EXPECT_DOUBLE_EQ(x[2], s2);
    });
  }
}

TEST(Collectives, AllReduceComplexSum) {
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    std::complex<double> z(double(comm.rank()), -double(comm.rank()));
    comm.all_reduce(&z, 1);
    EXPECT_DOUBLE_EQ(z.real(), 6.0);
    EXPECT_DOUBLE_EQ(z.imag(), -6.0);
  });
}

TEST(Collectives, AllReduceMaxMin) {
  const int p = 6;
  Team team(p);
  team.run([&](Communicator& comm) {
    double mx = double(comm.rank());
    double mn = double(comm.rank());
    comm.all_reduce(&mx, 1, Reduction::kMax);
    comm.all_reduce(&mn, 1, Reduction::kMin);
    EXPECT_DOUBLE_EQ(mx, double(p - 1));
    EXPECT_DOUBLE_EQ(mn, 0.0);
  });
}

TEST(Collectives, AllReduceDeterministicAcrossRanks) {
  // Floating-point reduction must produce bit-identical results on all ranks
  // (otherwise SPMD control flow can diverge).
  const int p = 7;
  std::vector<double> results(static_cast<std::size_t>(p));
  Team team(p);
  team.run([&](Communicator& comm) {
    double x = 0.1 * double(comm.rank() + 1);
    comm.all_reduce(&x, 1);
    results[std::size_t(comm.rank())] = x;
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[std::size_t(r)], results[0]);  // bitwise
  }
}

TEST(Collectives, Broadcast) {
  const int p = 5;
  Team team(p);
  team.run([&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> x(4, comm.rank() == root ? root + 100 : -1);
      comm.broadcast(x.data(), 4, root);
      for (int v : x) EXPECT_EQ(v, root + 100);
    }
  });
}

TEST(Collectives, AllGather) {
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    std::vector<double> mine = {double(comm.rank()), double(10 * comm.rank())};
    std::vector<double> all(std::size_t(2 * p), -1.0);
    comm.all_gather(mine.data(), 2, all.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[std::size_t(2 * r)], double(r));
      EXPECT_DOUBLE_EQ(all[std::size_t(2 * r + 1)], double(10 * r));
    }
  });
}

TEST(Collectives, AllGatherV) {
  // Rank r contributes r+1 values; verify placement by explicit displs.
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    const int r = comm.rank();
    std::vector<Index> counts = {1, 2, 3, 4};
    std::vector<Index> displs = {0, 1, 3, 6};
    std::vector<double> mine(std::size_t(r + 1), double(r));
    std::vector<double> all(10, -1.0);
    comm.all_gather_v(mine.data(), r + 1, all.data(), counts, displs);
    Index pos = 0;
    for (int s = 0; s < p; ++s) {
      for (Index i = 0; i < counts[std::size_t(s)]; ++i) {
        EXPECT_DOUBLE_EQ(all[std::size_t(pos++)], double(s));
      }
    }
  });
}

TEST(Collectives, BackToBackCollectivesDoNotInterfere) {
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    for (int it = 0; it < 50; ++it) {
      double x = 1.0;
      comm.all_reduce(&x, 1);
      EXPECT_DOUBLE_EQ(x, double(p));
      double y = comm.rank() == 0 ? double(it) : -1.0;
      comm.broadcast(&y, 1, 0);
      EXPECT_DOUBLE_EQ(y, double(it));
    }
  });
}

TEST(Split, PartitionsByColor) {
  const int p = 6;
  Team team(p);
  team.run([&](Communicator& comm) {
    // Even ranks one group, odd ranks the other; key preserves rank order.
    Communicator sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // The sub-communicator must be functional.
    double x = 1.0;
    sub.all_reduce(&x, 1);
    EXPECT_DOUBLE_EQ(x, 3.0);
  });
}

TEST(Split, KeyControlsOrdering) {
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    // Reverse ordering via descending keys.
    Communicator sub = comm.split(0, p - comm.rank());
    EXPECT_EQ(sub.size(), p);
    EXPECT_EQ(sub.rank(), p - 1 - comm.rank());
  });
}

TEST(Split, RepeatedSplitsAreIndependent) {
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    for (int it = 0; it < 10; ++it) {
      Communicator sub = comm.split(comm.rank() / 2, comm.rank());
      double x = 1.0;
      sub.all_reduce(&x, 1);
      EXPECT_DOUBLE_EQ(x, 2.0);
    }
  });
}

TEST(Grid2d, SquareGridCoordinates) {
  const int p = 2, q = 3;
  Team team(p * q);
  team.run([&](Communicator& comm) {
    Grid2d grid(comm, p, q);
    EXPECT_EQ(grid.my_row(), comm.rank() / q);
    EXPECT_EQ(grid.my_col(), comm.rank() % q);
    EXPECT_EQ(grid.col_comm().size(), p);
    EXPECT_EQ(grid.row_comm().size(), q);
    EXPECT_EQ(grid.col_comm().rank(), grid.my_row());
    EXPECT_EQ(grid.row_comm().rank(), grid.my_col());
  });
}

TEST(Grid2d, RowAndColumnCommunicatorsReduceIndependently) {
  const int p = 2, q = 2;
  Team team(p * q);
  team.run([&](Communicator& comm) {
    Grid2d grid(comm, p, q);
    // Sum of grid-column indices along a row communicator: 0 + 1 = 1.
    double x = double(grid.my_col());
    grid.row_comm().all_reduce(&x, 1);
    EXPECT_DOUBLE_EQ(x, 1.0);
    // Sum of grid-row indices along a column communicator: 0 + 1 = 1.
    double y = double(grid.my_row());
    grid.col_comm().all_reduce(&y, 1);
    EXPECT_DOUBLE_EQ(y, 1.0);
  });
}

TEST(Grid2d, NearlySquareFactorization) {
  EXPECT_EQ(Grid2d::nearly_square(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(Grid2d::nearly_square(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(Grid2d::nearly_square(6), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(Grid2d::nearly_square(7), (std::pair<int, int>{1, 7}));
  EXPECT_EQ(Grid2d::nearly_square(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(Grid2d::nearly_square(900), (std::pair<int, int>{30, 30}));
}

TEST(Grid2d, ShapeMismatchThrows) {
  Team team(4);
  EXPECT_THROW(team.run([](Communicator& comm) { Grid2d grid(comm, 3, 2); }),
               Error);
}

}  // namespace
}  // namespace chase::comm
