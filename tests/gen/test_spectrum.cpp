#include "gen/spectrum.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "gen/suite.hpp"
#include "la/heevd.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::gen {
namespace {

using chase::testing::tol;

TEST(Spectrum, UniformEndpointsAndSpacing) {
  auto eigs = uniform_spectrum<double>(5, -1.0, 3.0);
  EXPECT_DOUBLE_EQ(eigs.front(), -1.0);
  EXPECT_DOUBLE_EQ(eigs.back(), 3.0);
  EXPECT_DOUBLE_EQ(eigs[1] - eigs[0], 1.0);
}

TEST(Spectrum, GeneratorsAreSortedAndSized) {
  for (Index n : {10, 101}) {
    auto dft = dft_like_spectrum<double>(n, 1);
    auto bse = bse_like_spectrum<double>(n, 2);
    EXPECT_EQ(Index(dft.size()), n);
    EXPECT_EQ(Index(bse.size()), n);
    EXPECT_TRUE(std::is_sorted(dft.begin(), dft.end()));
    EXPECT_TRUE(std::is_sorted(bse.begin(), bse.end()));
    EXPECT_GT(bse.front(), 0.0);  // BSE spectra are positive
    EXPECT_LT(dft.front(), -5.0);  // DFT semi-core states below the band
  }
}

template <typename T>
class SpectrumTyped : public ::testing::Test {};
TYPED_TEST_SUITE(SpectrumTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(SpectrumTyped, PrescribedSpectrumIsExact) {
  using T = TypeParam;
  const Index n = 60;
  auto eigs = uniform_spectrum<double>(n, -2.0, 7.0);
  auto a = hermitian_with_spectrum<T>(eigs, 5);
  // Hermitian by construction.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < j; ++i) {
      EXPECT_LE(abs_value(T(a(i, j) - conjugate(a(j, i)))), 1e-14);
    }
  }
  // Eigenvalues must match the prescription.
  std::vector<double> w;
  la::Matrix<T> v(n, n);
  auto work = la::clone(a.cview());
  la::heevd(work.view(), w, v.view());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(w[std::size_t(i)], eigs[std::size_t(i)], 1e-10);
  }
}

TYPED_TEST(SpectrumTyped, MatrixIsDense) {
  using T = TypeParam;
  auto a = hermitian_with_spectrum<T>(uniform_spectrum<double>(40, 1.0, 2.0),
                                      7);
  // After two reflector conjugations no off-diagonal entry should vanish.
  Index zeros = 0;
  for (Index j = 0; j < 40; ++j) {
    for (Index i = 0; i < 40; ++i) {
      if (i != j && abs_value(a(i, j)) < 1e-14) ++zeros;
    }
  }
  EXPECT_LT(zeros, 8);
}

TEST(Spectrum, SeedsAreReproducibleAndDistinct) {
  auto a = hermitian_with_spectrum<double>(
      uniform_spectrum<double>(20, 0.0, 1.0), 42);
  auto b = hermitian_with_spectrum<double>(
      uniform_spectrum<double>(20, 0.0, 1.0), 42);
  auto c = hermitian_with_spectrum<double>(
      uniform_spectrum<double>(20, 0.0, 1.0), 43);
  EXPECT_EQ(la::max_abs_diff(a.cview(), b.cview()), 0.0);
  EXPECT_GT(la::max_abs_diff(a.cview(), c.cview()), 1e-3);
}

TEST(Suite, Table1ShapesPreserveRatios) {
  const auto& suite = table1_suite();
  ASSERT_EQ(suite.size(), 6u);
  for (const auto& p : suite) {
    EXPECT_GT(p.n, 0);
    EXPECT_GT(p.nev, 0);
    EXPECT_GT(p.nex, 0);
    EXPECT_LT(p.nev + p.nex, p.n);
    // nev/N stays in the "small extremal fraction" regime ChASE targets.
    // The BSE problems are scaled down ~50x in N but keep nev large enough
    // to be a meaningful workload, so their ratio grows by up to ~10x
    // (documented in DESIGN.md).
    const double ratio = double(p.nev) / double(p.n);
    const double paper_ratio = double(p.paper_nev) / double(p.paper_n);
    EXPECT_LT(ratio, 0.11) << p.name;  // <= ~10% of the spectrum
    EXPECT_GT(ratio, 0.3 * paper_ratio) << p.name;
  }
}

TEST(Suite, SmallSuiteMatricesBuild) {
  using T = std::complex<double>;
  for (const auto& p : table1_suite_small()) {
    auto a = suite_matrix<T>(p);
    EXPECT_EQ(a.rows(), p.n);
    // Spot-check the spectrum edge via the generator contract.
    auto eigs = suite_spectrum<double>(p);
    EXPECT_TRUE(std::is_sorted(eigs.begin(), eigs.end()));
  }
}

}  // namespace
}  // namespace chase::gen
