#include "core/sequence.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

template <typename T>
la::Matrix<T> perturbed(const la::Matrix<T>& h0, const la::Matrix<T>& p,
                        double eps) {
  auto h = la::clone(h0.cview());
  for (la::Index j = 0; j < h.cols(); ++j) {
    for (la::Index i = 0; i < h.rows(); ++i) {
      h(i, j) += T(RealType<T>(eps)) * p(i, j);
    }
  }
  return h;
}

TEST(Sequence, WarmStartsReduceWorkAcrossCorrelatedSolves) {
  using T = std::complex<double>;
  const la::Index n = 150;
  auto h0 = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 41), 41);
  auto pert = chase::testing::random_hermitian<T>(n, 42);

  ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  ChaseSequence<T> seq(cfg);

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(n, 1);

  long cold_total = 0, warm_total = 0;
  double eps = 1e-3;
  std::vector<double> prev_ev;
  for (int step = 0; step < 4; ++step, eps *= 0.3) {
    auto h = perturbed(h0, pert, eps);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());

    auto warm = seq.solve_next(hd);
    ASSERT_TRUE(warm.converged) << "step " << step;
    warm_total += warm.matvecs;

    auto cold = solve_sequential<T>(h.cview(), cfg);
    ASSERT_TRUE(cold.converged);
    cold_total += cold.matvecs;

    // Warm and cold must agree on the answer.
    for (la::Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(warm.eigenvalues[std::size_t(j)],
                  cold.eigenvalues[std::size_t(j)], 1e-7);
    }
  }
  // The warm sequence saves MatVecs overall (step 0 is identical work).
  EXPECT_LT(warm_total, cold_total);
}

TEST(Sequence, ResetForgetsTheGuess) {
  using T = double;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(80, 0.0, 2.0), 43);
  ChaseConfig cfg;
  cfg.nev = 5;
  cfg.nex = 4;
  ChaseSequence<T> seq(cfg);

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(80, 1);
  dist::DistHermitianMatrix<T> hd(grid, map, map);
  hd.fill_from_global(h.cview());

  EXPECT_FALSE(seq.has_guess());
  auto r1 = seq.solve_next(hd);
  ASSERT_TRUE(r1.converged);
  EXPECT_TRUE(seq.has_guess());
  seq.reset();
  EXPECT_FALSE(seq.has_guess());
}

TEST(Sequence, FailedSolveDoesNotPoisonTheGuess) {
  using T = double;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(60, 0.0, 1.0), 44);
  ChaseConfig cfg;
  cfg.nev = 5;
  cfg.nex = 3;
  cfg.tol = 1e-30;  // unreachable
  cfg.max_iterations = 2;
  ChaseSequence<T> seq(cfg);

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(60, 1);
  dist::DistHermitianMatrix<T> hd(grid, map, map);
  hd.fill_from_global(h.cview());

  auto r = seq.solve_next(hd);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(seq.has_guess());  // unconverged vectors are not stored
}

}  // namespace
}  // namespace chase::core
