// End-to-end convergence tests of the Algorithm 2 driver on a 1x1 grid,
// validated against the direct dense eigensolver.
#include <gtest/gtest.h>

#include <complex>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "gen/suite.hpp"
#include "la/heevd.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

using chase::testing::tol;

template <typename T>
void expect_eigenpairs_valid(la::ConstMatrixView<T> h,
                             const ChaseResult<T>& r, double res_tol) {
  using R = RealType<T>;
  const Index n = h.rows();
  const Index nev = r.eigenvectors.cols();
  // Residual check ||H v - lambda v|| <= res_tol * ||H||_est.
  la::Matrix<T> hv(n, nev);
  la::gemm(T(1), h, r.eigenvectors.view(), T(0), hv.view());
  const R scale =
      std::max(std::abs(r.bounds.b_sup), std::abs(r.bounds.mu_1));
  for (Index j = 0; j < nev; ++j) {
    R acc = 0;
    for (Index i = 0; i < n; ++i) {
      const T d = hv(i, j) - T(r.eigenvalues[std::size_t(j)]) *
                                 r.eigenvectors(i, j);
      acc += real_part(conjugate(d) * d);
    }
    EXPECT_LE(std::sqrt(acc) / scale, res_tol) << "pair " << j;
  }
  EXPECT_LE(la::orthogonality_error(r.eigenvectors.view()),
            1e-10);
}

template <typename T>
class ChaseSeqTyped : public ::testing::Test {};
TYPED_TEST_SUITE(ChaseSeqTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(ChaseSeqTyped, UniformSpectrumLowestPairs) {
  using T = TypeParam;
  const Index n = 120;
  auto eigs = gen::uniform_spectrum<double>(n, -3.0, 5.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 1);

  ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  auto r = solve_sequential<T>(h.cview(), cfg);

  ASSERT_TRUE(r.converged);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
  }
  expect_eigenpairs_valid(h.cview(), r, cfg.tol * 10);
}

TYPED_TEST(ChaseSeqTyped, MatchesDirectSolver) {
  using T = TypeParam;
  const Index n = 90;
  auto h = chase::testing::random_hermitian<T>(n, 7);

  // Direct reference.
  auto work = la::clone(h.cview());
  std::vector<double> w;
  la::Matrix<T> v(n, n);
  la::heevd(work.view(), w, v.view());

  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 8;
  cfg.tol = 1e-11;
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], w[std::size_t(j)], 1e-8);
  }
}

TYPED_TEST(ChaseSeqTyped, DegreeOptimizationOnAndOffConverge) {
  using T = TypeParam;
  const Index n = 100;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 3), 3);
  for (bool opt : {true, false}) {
    ChaseConfig cfg;
    cfg.nev = 8;
    cfg.nex = 4;
    cfg.tol = 1e-9;
    cfg.optimize_degree = opt;
    auto r = solve_sequential<T>(h.cview(), cfg);
    EXPECT_TRUE(r.converged) << "opt=" << opt;
    expect_eigenpairs_valid(h.cview(), r, cfg.tol * 10);
  }
}

TYPED_TEST(ChaseSeqTyped, Table1SmallSuiteConverges) {
  using T = TypeParam;
  for (const auto& p : gen::table1_suite_small()) {
    auto eigs = gen::suite_spectrum<double>(p);
    auto h = gen::hermitian_with_spectrum<T>(eigs, p.seed + 1);
    ChaseConfig cfg;
    cfg.nev = p.nev;
    cfg.nex = p.nex;
    cfg.tol = 1e-9;
    auto r = solve_sequential<T>(h.cview(), cfg);
    EXPECT_TRUE(r.converged) << p.name;
    for (Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-6)
          << p.name << " pair " << j;
    }
  }
}

TEST(ChaseSeq, LockingIsMonotoneAndStatsConsistent) {
  using T = double;
  const Index n = 110;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 0.0, 10.0), 9);
  ChaseConfig cfg;
  cfg.nev = 9;
  cfg.nex = 5;
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  int prev_locked = 0;
  long matvecs = 0;
  for (const auto& s : r.stats) {
    EXPECT_GE(s.locked_after, s.locked_before);
    EXPECT_EQ(s.locked_before, prev_locked);
    EXPECT_GT(s.matvecs, 0);
    EXPECT_GE(s.est_cond, 1.0);
    prev_locked = s.locked_after;
    matvecs += s.matvecs;
  }
  EXPECT_EQ(matvecs, r.matvecs);
  EXPECT_EQ(int(r.stats.size()), r.iterations);
}

TEST(ChaseSeq, ObserverSeesEveryIteration) {
  using T = double;
  struct Probe : ChaseObserver<T> {
    int filters = 0;
    int iters = 0;
    void after_filter(int, int, la::ConstMatrixView<T>, double est) override {
      ++filters;
      EXPECT_GE(est, 1.0);
    }
    void after_iteration(const IterationStats&) override { ++iters; }
  };
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(80, -1.0, 1.0), 11);
  ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;
  Probe probe;
  auto r = solve_sequential<T>(h.cview(), cfg, &probe);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(probe.filters, r.iterations);
  EXPECT_EQ(probe.iters, r.iterations);
}

TEST(ChaseSeq, ApproximateInputConvergesFaster) {
  // The DFT motivation (Section 1): feeding back approximate eigenvectors
  // (here: solving a perturbed matrix starting from scratch vs. many fewer
  // MatVecs when the spectrum is re-solved with tighter locking) — we check
  // the weaker, deterministic property that a second solve of the same
  // matrix with the converged tolerance relaxation converges in at most as
  // many iterations.
  using T = double;
  const Index n = 100;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 13), 13);
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-8;
  auto r1 = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r1.converged);
  cfg.tol = 1e-6;
  auto r2 = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r2.converged);
  EXPECT_LE(r2.matvecs, r1.matvecs);
}

TEST(ChaseSeq, HouseholderAndCholeskyQrSameConvergence) {
  // Table 2's headline numerical claim: the QR variant does not change the
  // convergence history (same iterations, same MatVec count).
  using T = std::complex<double>;
  const Index n = 150;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 17), 17);
  ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 6;
  cfg.tol = 1e-10;

  auto r_chol = solve_sequential<T>(h.cview(), cfg);
  cfg.qr.force_householder = true;
  auto r_hh = solve_sequential<T>(h.cview(), cfg);

  ASSERT_TRUE(r_chol.converged);
  ASSERT_TRUE(r_hh.converged);
  EXPECT_EQ(r_chol.iterations, r_hh.iterations);
  EXPECT_EQ(r_chol.matvecs, r_hh.matvecs);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r_chol.eigenvalues[std::size_t(j)],
                r_hh.eigenvalues[std::size_t(j)], 1e-9);
  }
}

TEST(ChaseSeq, MaxIterationsRespectedOnImpossibleTolerance) {
  using T = double;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(60, 0.0, 1.0), 19);
  ChaseConfig cfg;
  cfg.nev = 5;
  cfg.nex = 3;
  cfg.tol = 1e-30;  // unreachable
  cfg.max_iterations = 4;
  auto r = solve_sequential<T>(h.cview(), cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 4);
}

TEST(ChaseSeq, InvalidConfigThrows) {
  using T = double;
  auto h = chase::testing::random_hermitian<T>(20, 1);
  ChaseConfig cfg;  // nev = 0
  EXPECT_THROW(solve_sequential<T>(h.cview(), cfg), Error);
  cfg.nev = 15;
  cfg.nex = 10;  // subspace exceeds n
  EXPECT_THROW(solve_sequential<T>(h.cview(), cfg), Error);
}


TEST(ChaseSeq, WarmStartFromExactEigenvectorsConvergesFast) {
  using T = double;
  const Index n = 120;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, -2.0, 6.0), 23);
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 5;
  cfg.tol = 1e-9;
  auto cold = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(cold.converged);

  // Re-solving the same matrix seeded with its own eigenvectors must lock
  // everything almost immediately.
  auto warm = solve_sequential<T>(h.cview(), cfg, nullptr,
                                  cold.eigenvectors.cview());
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2);
  EXPECT_LT(warm.matvecs, cold.matvecs / 2);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(warm.eigenvalues[std::size_t(j)],
                cold.eigenvalues[std::size_t(j)], 1e-9);
  }
}

TEST(ChaseSeq, WarmStartShapeChecked) {
  using T = double;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(50, 0.0, 1.0), 25);
  ChaseConfig cfg;
  cfg.nev = 5;
  cfg.nex = 3;
  la::Matrix<T> bad(50, 10);  // more columns than nev+nex
  EXPECT_THROW(
      solve_sequential<T>(h.cview(), cfg, nullptr, bad.cview()), Error);
  la::Matrix<T> wrong_rows(40, 3);
  EXPECT_THROW(solve_sequential<T>(h.cview(), cfg, nullptr,
                                   wrong_rows.cview()),
               Error);
}

}  // namespace
}  // namespace chase::core
