// Properties of the Lanczos spectral-bound / DoS estimation (Algorithm 2
// line 1): the upper bound must actually bound the spectrum (the filter
// diverges otherwise), mu_1 must reach the lower edge, and the quantile
// estimate mu_ne must land inside the spectrum.
#include "core/lanczos.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "gen/spectrum.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

template <typename T>
SpectralBounds<double> bounds_of(const la::Matrix<T>& h, la::Index ne,
                                 int steps = 25, int nvec = 4) {
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  const la::Index n = h.rows();
  dist::DistHermitianMatrix<T> hd(grid, dist::IndexMap::block(n, 1),
                                  dist::IndexMap::block(n, 1));
  hd.fill_from_global(h.cview());
  return lanczos_bounds(hd, ne, steps, nvec, 2023);
}

template <typename T>
class LanczosTyped : public ::testing::Test {};
TYPED_TEST_SUITE(LanczosTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(LanczosTyped, UpperBoundCoversSpectrum) {
  using T = TypeParam;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const la::Index n = 120;
    auto eigs = gen::uniform_spectrum<double>(n, -2.0, 5.0);
    auto h = gen::hermitian_with_spectrum<T>(eigs, seed);
    auto b = bounds_of(h, 12);
    EXPECT_GE(b.b_sup, eigs.back() - 1e-10) << "seed " << seed;
    // ...but not wildly above it (a loose bound wastes filter degrees).
    EXPECT_LE(b.b_sup, eigs.back() + 0.5 * (eigs.back() - eigs.front()));
  }
}

TYPED_TEST(LanczosTyped, LowerEstimateReachesTheEdge) {
  // Lanczos converges to extremal eigenvalues first: mu_1 should be within
  // a tight tolerance of lambda_min after ~25 steps.
  using T = TypeParam;
  const la::Index n = 150;
  auto eigs = gen::dft_like_spectrum<double>(n, 5);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 5);
  auto b = bounds_of(h, 15);
  EXPECT_NEAR(b.mu_1, eigs.front(), 1e-3 * std::abs(eigs.front()));
  EXPECT_GE(b.mu_1, eigs.front() - 1e-10);  // Ritz values never undershoot
}

TYPED_TEST(LanczosTyped, QuantileEstimateLandsInsideTheSpectrum) {
  using T = TypeParam;
  const la::Index n = 200;
  auto eigs = gen::uniform_spectrum<double>(n, 0.0, 10.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 7);
  const la::Index ne = 20;
  auto b = bounds_of(h, ne, 30, 6);
  // mu_ne estimates lambda_20 = 1.0 of a uniform [0,10] spectrum; the
  // stochastic quantile is crude but must stay in a sane neighbourhood and
  // strictly inside (mu_1, b_sup).
  EXPECT_GT(b.mu_ne, b.mu_1);
  EXPECT_LT(b.mu_ne, b.b_sup);
  EXPECT_NEAR(b.mu_ne, 1.0, 2.0);
}

TEST(Lanczos, DegenerateSpectrumBreakdownHandled) {
  // H = alpha I: the first Lanczos step finds an invariant subspace
  // (beta = 0); the bounds must still come out sane.
  using T = double;
  const la::Index n = 40;
  la::Matrix<T> h(n, n);
  for (la::Index j = 0; j < n; ++j) h(j, j) = 3.0;
  auto b = bounds_of(h, 4);
  EXPECT_NEAR(b.mu_1, 3.0, 1e-12);
  EXPECT_GE(b.b_sup, 3.0 - 1e-12);
  EXPECT_LT(b.b_sup, 3.5);
}

TEST(Lanczos, MatchesAcrossGridShapes) {
  using T = std::complex<double>;
  const la::Index n = 60;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::bse_like_spectrum<double>(n, 9), 9);
  auto seq = bounds_of(h, 10);

  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());
    auto par = lanczos_bounds(hd, 10, 25, 4, 2023);
    EXPECT_NEAR(par.b_sup, seq.b_sup, 1e-10);
    EXPECT_NEAR(par.mu_1, seq.mu_1, 1e-10);
    EXPECT_NEAR(par.mu_ne, seq.mu_ne, 1e-10);
  });
}

}  // namespace
}  // namespace chase::core
