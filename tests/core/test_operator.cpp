#include "core/operator.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "core/sequential.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

using dist::IndexMap;

/// Matrix-backed row functor, for comparing the adapter against the dense
/// path entry-for-entry.
template <typename T>
struct DenseRow {
  const la::Matrix<T>* h;
  T operator()(la::Index row, la::ConstMatrixView<T> x, la::Index col) const {
    T acc(0);
    for (la::Index k = 0; k < h->rows(); ++k) acc += (*h)(row, k) * x(k, col);
    return acc;
  }
};

TEST(MatrixFree, ApplyMatchesDenseOperator) {
  using T = std::complex<double>;
  const la::Index n = 40, ncols = 5;
  auto h = chase::testing::random_hermitian<T>(n, 1);
  auto x = chase::testing::random_matrix<T>(n, ncols, 2);

  for (int p : {1, 2}) {
    comm::Team team(p * p);
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, p, p);
      auto map = IndexMap::block(n, p);
      dist::DistHermitianMatrix<T> hd(grid, map, map);
      hd.fill_from_global(h.cview());
      MatrixFreeOperator<T, DenseRow<T>> hop(grid, map, map, DenseRow<T>{&h});

      la::Matrix<T> xc(map.local_size(grid.my_row()), ncols);
      dist::scatter_rows(map, grid.my_row(), x.cview(), xc.view());
      la::Matrix<T> y_dense(map.local_size(grid.my_col()), ncols);
      la::Matrix<T> y_free(map.local_size(grid.my_col()), ncols);
      hd.apply_c2b(T(2), xc.cview(), T(0), y_dense.view());
      hop.apply_c2b(T(2), xc.cview(), T(0), y_free.view());
      EXPECT_LE(la::max_abs_diff(y_dense.cview(), y_free.cview()), 1e-10);

      // Shift must act on the diagonal identically.
      hd.shift_diagonal(-1.5);
      hop.shift_diagonal(-1.5);
      hd.apply_b2c(T(1), y_dense.cview(), T(0), xc.view());
      la::Matrix<T> xc2(map.local_size(grid.my_row()), ncols);
      hop.apply_b2c(T(1), y_dense.cview(), T(0), xc2.view());
      EXPECT_LE(la::max_abs_diff(xc.cview(), xc2.cview()), 1e-9);
    });
  }
}

TEST(MatrixFree, Laplacian3DRowsMatchDenseAssembly) {
  using T = double;
  Laplacian3D<T> lap{3, 4, 2};
  const la::Index n = lap.size();
  // Assemble densely from the stencil and compare products.
  la::Matrix<T> h(n, n);
  la::Matrix<T> basis(n, n);
  la::set_identity(basis.view());
  for (la::Index col = 0; col < n; ++col) {
    for (la::Index row = 0; row < n; ++row) {
      h(row, col) = lap(row, basis.cview(), col);
    }
  }
  // Hermitian?
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < n; ++i) {
      EXPECT_EQ(h(i, j), h(j, i));
    }
  }
  // Spectrum matches the closed form.
  std::vector<double> w;
  la::Matrix<T> z(n, n);
  auto work = la::clone(h.cview());
  la::heevd(work.view(), w, z.view());
  auto exact = lap.exact_eigenvalues();
  for (la::Index i = 0; i < n; ++i) {
    EXPECT_NEAR(w[std::size_t(i)], exact[std::size_t(i)], 1e-12);
  }
}

TEST(MatrixFree, ChaseSolvesLaplacianWithoutAssembling) {
  using T = double;
  Laplacian3D<T> lap{6, 5, 4};  // N = 120, never materialized
  const la::Index n = lap.size();

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = IndexMap::block(n, 1);
  MatrixFreeOperator<T, Laplacian3D<T>> hop(grid, map, map, lap);

  ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  auto r = solve(hop, cfg);
  ASSERT_TRUE(r.converged);
  auto exact = lap.exact_eigenvalues();
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], exact[std::size_t(j)], 1e-8)
        << "pair " << j;
  }
}

TEST(MatrixFree, DistributedLaplacianMatchesSequential) {
  using T = double;
  Laplacian3D<T> lap{5, 4, 4};  // N = 80
  const la::Index n = lap.size();
  ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;
  cfg.tol = 1e-9;

  std::vector<double> seq_ev;
  {
    comm::Communicator self;
    comm::Grid2d grid(self, 1, 1);
    auto map = IndexMap::block(n, 1);
    MatrixFreeOperator<T, Laplacian3D<T>> hop(grid, map, map, lap);
    auto r = solve(hop, cfg);
    ASSERT_TRUE(r.converged);
    seq_ev = r.eigenvalues;
  }
  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = IndexMap::block(n, 2);
    MatrixFreeOperator<T, Laplacian3D<T>> hop(grid, map, map, lap);
    auto r = solve(hop, cfg);
    ASSERT_TRUE(r.converged);
    for (la::Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)], seq_ev[std::size_t(j)],
                  1e-8);
    }
  });
}

}  // namespace
}  // namespace chase::core
