// Numerical-breakdown recovery in the Algorithm 2 driver: NaN corruption of
// the filter output and transient corruption of an all_reduce are detected,
// repaired by deterministic re-randomization, and observable in perf
// counters; persistent corruption terminates cleanly instead of looping.
#include <gtest/gtest.h>

#include <chrono>
#include <complex>
#include <limits>

#include "common/faultinject.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

template <typename T>
ChaseConfig recovery_config() {
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  return cfg;
}

TEST(Recovery, FilterNanIsRerandomizedAndSolveConverges) {
  using T = double;
  const Index n = 100;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, -1.0, 5.0), 41);
  auto cfg = recovery_config<T>();

  perf::Tracker tracker;
  std::vector<double> corrupted_eigs;
  {
    fault::Scoped armed("filter.nan", /*rank=*/-1, /*times=*/1);
    perf::set_thread_tracker(&tracker);
    auto r = solve_sequential<T>(h.cview(), cfg);
    perf::set_thread_tracker(nullptr);
    EXPECT_EQ(fault::fire_count("filter.nan"), 1);
    ASSERT_TRUE(r.converged);
    corrupted_eigs = r.eigenvalues;
  }
  EXPECT_GE(tracker.counter("filter.nan_recovery"), 1.0);

  // The recovered solve must land on the same eigenvalues as a clean one.
  auto clean = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(corrupted_eigs[std::size_t(j)],
                clean.eigenvalues[std::size_t(j)], 1e-7)
        << "pair " << j;
  }
}

TEST(Recovery, FilterNanDistributedConsensus) {
  // rank=-1 arming corrupts the replicated C block identically on every
  // grid column, so the consensus guard takes the same branch everywhere and
  // the 2x2 distributed solve still matches the sequential solution.
  using T = std::complex<double>;
  const Index n = 96;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 43), 43);
  auto cfg = recovery_config<T>();
  auto seq = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(seq.converged);

  fault::Scoped armed("filter.nan", /*rank=*/-1, /*times=*/1);
  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto rmap = dist::IndexMap::block(n, 2);
    auto cmap = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd(grid, rmap, cmap);
    hd.fill_from_global(h.cview());
    auto r = solve(hd, cfg);
    ASSERT_TRUE(r.converged);
    for (Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                  seq.eigenvalues[std::size_t(j)], 1e-7)
          << "pair " << j;
    }
  });
  EXPECT_EQ(fault::fire_count("filter.nan"), 4);  // once per rank
}

TEST(Recovery, PersistentFilterCorruptionTerminatesCleanly) {
  // Unlimited filter.nan: re-randomization cannot help, so the bounded
  // retry budget must kick in and the solve must report non-convergence
  // instead of spinning or crashing.
  using T = double;
  const Index n = 80;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 0.0, 4.0), 45);
  auto cfg = recovery_config<T>();

  fault::Scoped armed("filter.nan", /*rank=*/-1, /*times=*/-1);
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);
  auto r = solve_sequential<T>(h.cview(), cfg);
  perf::set_thread_tracker(nullptr);
  EXPECT_FALSE(r.converged);
  EXPECT_DOUBLE_EQ(tracker.counter("filter.nan_recovery"), 3.0);  // budget
}

TEST(Recovery, TransientAllReduceCorruptionRestartsLanczos) {
  // A corrupted all_reduce during the first Lanczos norm computation makes
  // the recurrence non-finite; the run restarts with a salted random stream
  // and the solve proceeds to convergence.
  using T = double;
  const Index n = 90;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, -2.0, 2.0), 47);
  auto cfg = recovery_config<T>();

  fault::Scoped armed("allreduce.corrupt", /*rank=*/-1, /*times=*/1);
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);
  auto r = solve_sequential<T>(h.cview(), cfg);
  perf::set_thread_tracker(nullptr);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(tracker.counter("lanczos.restart"), 1.0);

  auto clean = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                clean.eigenvalues[std::size_t(j)], 1e-7);
  }
}

TEST(Recovery, PersistentNonFiniteMatrixIsReportedNotLooped) {
  // A NaN in H itself defeats every Lanczos restart: after the bounded
  // retries the solver must raise a diagnosable error.
  using T = double;
  const Index n = 60;
  auto h = chase::testing::random_hermitian<T>(n, 49);
  h(0, 0) = std::numeric_limits<double>::quiet_NaN();
  auto cfg = recovery_config<T>();
  EXPECT_THROW(solve_sequential<T>(h.cview(), cfg), Error);
}

TEST(Recovery, RankDeathDuringDistributedSolveIsReported) {
  // The tentpole wired end to end: a rank dying inside the solver's
  // collectives must surface as TeamAborted naming the rank and site, with
  // no deadlock and no process abort.
  using T = double;
  const Index n = 64;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 0.0, 3.0), 51);
  auto cfg = recovery_config<T>();

  comm::ScopedBarrierTimeout fast(std::chrono::milliseconds(2000));
  fault::Scoped armed("rank.die", /*rank=*/1, /*times=*/1);
  comm::Team team(4);
  try {
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, 2, 2);
      auto rmap = dist::IndexMap::block(n, 2);
      auto cmap = dist::IndexMap::block(n, 2);
      dist::DistHermitianMatrix<T> hd(grid, rmap, cmap);
      hd.fill_from_global(h.cview());
      (void)solve(hd, cfg);
    });
    FAIL() << "expected TeamAborted";
  } catch (const comm::TeamAborted& e) {
    EXPECT_EQ(e.error().rank, 1);
    EXPECT_EQ(e.error().site, "rank.die");
  }
}

}  // namespace
}  // namespace chase::core
