// Distributed runs of the Algorithm 2 driver and the legacy LMS scheme:
// all grid shapes, map kinds and backends must agree with the sequential
// solution, and the recorded event streams must show the paper's structural
// claims (STD staging vs NCCL, LMS message growth).
#include <gtest/gtest.h>

#include <complex>

#include "core/legacy_lms.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

using comm::Backend;

template <typename T>
ChaseConfig small_config() {
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  return cfg;
}

template <typename T>
la::Matrix<T> test_matrix(la::Index n) {
  return gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 21), 21);
}

struct DistCase {
  int nprow;
  int npcol;
  bool cyclic;
};

class ChaseDistGrid : public ::testing::TestWithParam<DistCase> {};

TEST_P(ChaseDistGrid, MatchesSequentialEigenvalues) {
  using T = std::complex<double>;
  const auto gc = GetParam();
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  auto seq = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(seq.converged);

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = gc.cyclic ? dist::IndexMap::block_cyclic(n, gc.nprow, 8)
                          : dist::IndexMap::block(n, gc.nprow);
    auto cmap = gc.cyclic ? dist::IndexMap::block_cyclic(n, gc.npcol, 8)
                          : dist::IndexMap::block(n, gc.npcol);
    dist::DistHermitianMatrix<T> hd(grid, rmap, cmap);
    hd.fill_from_global(h.cview());
    auto r = solve(hd, cfg);
    ASSERT_TRUE(r.converged);
    for (la::Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                  seq.eigenvalues[std::size_t(j)], 1e-7)
          << "pair " << j;
    }
    // Gather the distributed eigenvectors and verify residuals directly.
    la::Matrix<T> v(n, cfg.nev);
    dist::gather_rows(grid.col_comm(), rmap, r.eigenvectors.view().as_const(),
                      v.view());
    la::Matrix<T> hv(n, cfg.nev);
    la::gemm(T(1), h.cview(), v.cview(), T(0), hv.view());
    const double scale = std::abs(r.bounds.b_sup);
    for (la::Index j = 0; j < cfg.nev; ++j) {
      double acc = 0;
      for (la::Index i = 0; i < n; ++i) {
        const T d = hv(i, j) - T(r.eigenvalues[std::size_t(j)]) * v(i, j);
        acc += std::norm(d);
      }
      EXPECT_LE(std::sqrt(acc) / scale, 1e-8) << "pair " << j;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ChaseDistGrid,
    ::testing::Values(DistCase{1, 2, false}, DistCase{2, 2, false},
                      DistCase{2, 3, false}, DistCase{2, 2, true}),
    [](const auto& info) {
      return std::to_string(info.param.nprow) + "x" +
             std::to_string(info.param.npcol) +
             (info.param.cyclic ? "_cyclic" : "_block");
    });

TEST(ChaseDist, StdAndNcclBackendsBitwiseIdenticalNumerics) {
  using T = double;
  const la::Index n = 64;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();
  std::vector<double> ev_std, ev_nccl;

  for (Backend bk : {Backend::kStdGpu, Backend::kNcclGpu}) {
    comm::Team team(4, bk);
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, 2, 2);
      auto map = dist::IndexMap::block(n, 2);
      dist::DistHermitianMatrix<T> hd(grid, map, map);
      hd.fill_from_global(h.cview());
      auto r = solve(hd, cfg);
      ASSERT_TRUE(r.converged);
      if (world.rank() == 0) {
        (bk == Backend::kStdGpu ? ev_std : ev_nccl) = r.eigenvalues;
      }
    });
  }
  ASSERT_EQ(ev_std.size(), ev_nccl.size());
  for (std::size_t j = 0; j < ev_std.size(); ++j) {
    EXPECT_EQ(ev_std[j], ev_nccl[j]);  // same arithmetic, backend-independent
  }
}

TEST(ChaseDist, StdBackendStagesEveryCollective) {
  using T = double;
  const la::Index n = 48;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();
  cfg.max_iterations = 3;
  cfg.tol = 1e-14;

  for (Backend bk : {Backend::kStdGpu, Backend::kNcclGpu}) {
    std::vector<perf::Tracker> trackers(4);
    comm::Team team(4, bk);
    team.run(
        [&](comm::Communicator& world) {
          comm::Grid2d grid(world, 2, 2);
          auto map = dist::IndexMap::block(n, 2);
          dist::DistHermitianMatrix<T> hd(grid, map, map);
          hd.fill_from_global(h.cview());
          solve(hd, cfg);
        },
        &trackers);
    const auto& t = trackers[0];
    EXPECT_GT(t.collectives().size(), 0u);
    if (bk == Backend::kStdGpu) {
      // Two staging copies per collective (D2H before, H2D after).
      EXPECT_EQ(t.memcpys().size(), 2 * t.collectives().size());
    } else {
      EXPECT_EQ(t.memcpys().size(), 0u);
    }
  }
}

TEST(ChaseDist, LmsMatchesNewSchemeEigenvalues) {
  using T = std::complex<double>;
  const la::Index n = 80;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  auto seq = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(seq.converged);

  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());
    auto r = solve_lms(hd, cfg);
    ASSERT_TRUE(r.converged);
    for (la::Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                  seq.eigenvalues[std::size_t(j)], 1e-7);
    }
  });
}

TEST(ChaseDist, LmsMovesMoreDataThanNewScheme) {
  // Section 2.3's complaints, verified on the event streams: the v1.2 scheme
  // broadcasts more messages (per-task collection) and moves more
  // host-device bytes (full-buffer round trips) than Algorithm 2.
  using T = double;
  const la::Index n = 64;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();
  cfg.max_iterations = 2;
  cfg.tol = 1e-14;  // force both to run the same 2 iterations

  auto run = [&](bool lms) {
    std::vector<perf::Tracker> trackers(4);
    comm::Team team(4, Backend::kStdGpu);
    team.run(
        [&](comm::Communicator& world) {
          comm::Grid2d grid(world, 2, 2);
          auto map = dist::IndexMap::block(n, 2);
          dist::DistHermitianMatrix<T> hd(grid, map, map);
          hd.fill_from_global(h.cview());
          if (lms) {
            solve_lms(hd, cfg);
          } else {
            solve(hd, cfg);
          }
        },
        &trackers);
    std::size_t bcasts = 0, copy_bytes = 0;
    for (const auto& ev : trackers[0].collectives()) {
      if (ev.kind == perf::CollKind::kBroadcast) ++bcasts;
    }
    for (const auto& ev : trackers[0].memcpys()) copy_bytes += ev.bytes;
    return std::pair(bcasts, copy_bytes);
  };

  const auto [bcasts_new, bytes_new] = run(false);
  const auto [bcasts_lms, bytes_lms] = run(true);
  EXPECT_GT(bcasts_lms, bcasts_new);
  EXPECT_GT(bytes_lms, bytes_new);
}

TEST(ChaseDist, ReproducibleAcrossGridShapes) {
  // The initial subspace depends only on global indices, so two different
  // grids must produce identical iteration counts and MatVec totals.
  using T = double;
  const la::Index n = 72;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  long mv_a = 0, mv_b = 0;
  int it_a = 0, it_b = 0;
  {
    comm::Team team(2);
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, 1, 2);
      dist::DistHermitianMatrix<T> hd(grid, dist::IndexMap::block(n, 1),
                                      dist::IndexMap::block(n, 2));
      hd.fill_from_global(h.cview());
      auto r = solve(hd, cfg);
      if (world.rank() == 0) {
        mv_a = r.matvecs;
        it_a = r.iterations;
      }
    });
  }
  {
    comm::Team team(4);
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, 2, 2);
      auto map = dist::IndexMap::block(n, 2);
      dist::DistHermitianMatrix<T> hd(grid, map, map);
      hd.fill_from_global(h.cview());
      auto r = solve(hd, cfg);
      if (world.rank() == 0) {
        mv_b = r.matvecs;
        it_b = r.iterations;
      }
    });
  }
  EXPECT_EQ(it_a, it_b);
  EXPECT_EQ(mv_a, mv_b);
}

}  // namespace
}  // namespace chase::core
