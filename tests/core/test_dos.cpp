#include "core/dos.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/spectrum.hpp"

namespace chase::core {
namespace {

template <typename T>
DosEstimate<double> dos_of(const la::Matrix<T>& h, int steps = 30,
                           int nvec = 6) {
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  const la::Index n = h.rows();
  dist::DistHermitianMatrix<T> hd(grid, dist::IndexMap::block(n, 1),
                                  dist::IndexMap::block(n, 1));
  hd.fill_from_global(h.cview());
  return estimate_dos(hd, steps, nvec, 7);
}

TEST(Dos, WeightsSumToOne) {
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(150, -1.0, 1.0), 1);
  auto dos = dos_of(h);
  const double total =
      std::accumulate(dos.weights.begin(), dos.weights.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_TRUE(std::is_sorted(dos.nodes.begin(), dos.nodes.end()));
}

TEST(Dos, BoundsBracketTheSpectrum) {
  auto eigs = gen::uniform_spectrum<double>(120, -3.0, 7.0);
  auto h = gen::hermitian_with_spectrum<double>(eigs, 2);
  auto dos = dos_of(h);
  EXPECT_GE(dos.upper, eigs.back() - 1e-6);
  EXPECT_LE(dos.lower, eigs.front() + 0.5);  // Lanczos reaches the edge fast
  EXPECT_GE(dos.lower, eigs.front() - 1e-6);
}

TEST(Dos, CumulativeCountTracksUniformSpectrum) {
  const la::Index n = 200;
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, 0.0, 1.0), 3);
  auto dos = dos_of(h, 40, 8);
  // For a uniform spectrum, about half the eigenvalues lie below the
  // midpoint; the stochastic estimate should land within ~20%.
  const double mid = dos.cumulative_count(0.5, n);
  EXPECT_NEAR(mid, double(n) / 2, double(n) * 0.2);
  EXPECT_NEAR(dos.cumulative_count(2.0, n), double(n), double(n) * 0.05);
}

TEST(Dos, QuantileInvertsCumulativeCount) {
  const la::Index n = 160;
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, -2.0, 2.0), 4);
  auto dos = dos_of(h, 40, 8);
  const double tau = dos.quantile(double(n) / 4, n);
  // A quarter of a uniform [-2, 2] spectrum lies below -1.
  EXPECT_NEAR(tau, -1.0, 0.8);
}

TEST(Dos, HistogramDetectsSpectralGap) {
  // Spectrum with a hole in the middle: the corresponding histogram bins
  // must be (nearly) empty.
  const la::Index n = 200;
  std::vector<double> eigs;
  for (la::Index i = 0; i < n / 2; ++i) eigs.push_back(double(i) / 100.0);
  for (la::Index i = 0; i < n / 2; ++i) {
    eigs.push_back(10.0 + double(i) / 100.0);
  }
  auto h = gen::hermitian_with_spectrum<double>(eigs, 5);
  auto dos = dos_of(h, 40, 8);
  auto hist = dos_histogram(dos, 10);
  // Bins covering the gap (roughly bins 2-8 of [0, ~11]) carry almost no
  // mass; the edge bins carry almost everything.
  double gap_mass = 0;
  for (int b = 2; b <= 7; ++b) gap_mass += hist[std::size_t(b)];
  EXPECT_LT(gap_mass, 0.05);
  EXPECT_GT(hist.front() + hist.back(), 0.7);
}

TEST(Dos, HistogramValidatesBinCount) {
  DosEstimate<double> dos;
  dos.lower = 0;
  dos.upper = 1;
  EXPECT_THROW(dos_histogram(dos, 0), Error);
}

}  // namespace
}  // namespace chase::core
