// Deeper property tests of the ChASE building blocks: the filter's analytic
// polynomial, degenerate/edge-case spectra, precision variants.
#include <gtest/gtest.h>

#include <complex>

#include "core/filter.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

/// Scaled Chebyshev value the filter implements:
/// p_d(x) = C_d((x - c)/e) / C_d((mu_1 - c)/e).
double scaled_chebyshev(int d, double x, double c, double e, double mu1) {
  auto cheb = [&](double t) {
    if (std::abs(t) <= 1.0) return std::cos(d * std::acos(t));
    const double s = t < 0 ? (d % 2 == 0 ? 1.0 : -1.0) : 1.0;
    return s * std::cosh(d * std::acosh(std::abs(t)));
  };
  return cheb((x - c) / e) / cheb((mu1 - c) / e);
}

TEST(FilterProperty, MatchesAnalyticChebyshevOnDiagonalMatrix) {
  // For H = diag(lambda) and C = e_j columns, the filtered columns are
  // p_d(lambda_j) e_j — directly comparable to the closed form.
  using T = double;
  const la::Index n = 12;
  const std::vector<double> lambda = {-2.0, -1.5, -1.1, -0.9, -0.5, 0.0,
                                      0.3,  0.7,  1.0,  1.3,  1.7,  2.0};
  la::Matrix<T> h(n, n);
  for (la::Index j = 0; j < n; ++j) h(j, j) = lambda[std::size_t(j)];

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  dist::DistHermitianMatrix<T> hd(grid, dist::IndexMap::block(n, 1),
                                  dist::IndexMap::block(n, 1));
  hd.fill_from_global(h.cview());

  // Damp [0, 2] (center 1, half-width 1), normalize at mu_1 = -2.
  const double c = 1.0, e = 1.0, mu1 = -2.0;
  for (int deg : {2, 6, 12}) {
    la::Matrix<T> x(n, n), b(n, n);
    la::set_identity(x.view());
    std::vector<int> degs(std::size_t(n), deg);
    chebyshev_filter(hd, x.view(), b.view(), degs, c, e, mu1);

    for (la::Index j = 0; j < n; ++j) {
      const double expect =
          scaled_chebyshev(deg, lambda[std::size_t(j)], c, e, mu1);
      EXPECT_NEAR(x(j, j), expect, std::abs(expect) * 1e-11 + 1e-12)
          << "deg=" << deg << " lambda=" << lambda[std::size_t(j)];
      // Off-diagonal entries stay zero for a diagonal H.
      for (la::Index i = 0; i < n; ++i) {
        if (i != j) {
          EXPECT_EQ(x(i, j), 0.0);
        }
      }
    }
  }
}

TEST(FilterProperty, DampedIntervalShrinksUnwantedComponents) {
  // |p_d| <= 1 inside the damped interval, growing with distance below it.
  using T = double;
  const la::Index n = 40;
  auto eigs = gen::uniform_spectrum<double>(n, -1.0, 1.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 3);
  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  dist::DistHermitianMatrix<T> hd(grid, dist::IndexMap::block(n, 1),
                                  dist::IndexMap::block(n, 1));
  hd.fill_from_global(h.cview());

  // Damp the upper 80% of the spectrum: interval [-0.6, 1.0].
  const double c = 0.2, e = 0.8, mu1 = -1.0;
  Rng rng(5);
  la::Matrix<T> x(n, 1), b(n, 1);
  for (la::Index i = 0; i < n; ++i) x(i, 0) = rng.gaussian<T>();
  const double before = la::nrm2(n, x.data());
  std::vector<int> degs = {20};
  chebyshev_filter(hd, x.view(), b.view(), degs, c, e, mu1);

  // Rayleigh quotient of the filtered vector must sit near the preserved
  // (lower) spectral edge: the scaling keeps p(mu_1) = 1 while everything
  // inside the damped interval shrinks, so the total norm goes down and the
  // direction collapses onto the lowest eigenvector.
  la::Matrix<T> hx(n, 1);
  la::gemm(T(1), h.cview(), x.cview(), T(0), hx.view());
  const double nom = la::dotc(n, x.data(), hx.data());
  const double den = la::dotc(n, x.data(), x.data());
  EXPECT_LT(nom / den, -0.85);               // pushed toward lambda_min = -1
  EXPECT_LT(la::nrm2(n, x.data()), before);  // damped overall
}

TEST(ChaseEdge, DegenerateEigenvaluesLockTogether) {
  using T = double;
  const la::Index n = 80;
  std::vector<double> eigs(static_cast<std::size_t>(n));
  for (la::Index i = 0; i < n; ++i) {
    eigs[std::size_t(i)] = i < 4 ? -5.0 : double(i) * 0.1;  // 4-fold lowest
  }
  auto h = gen::hermitian_with_spectrum<T>(eigs, 7);
  ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;
  cfg.tol = 1e-9;
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], -5.0, 1e-7);
  }
  EXPECT_NEAR(r.eigenvalues[4], 0.4, 1e-7);
  // The invariant subspace of the multiple eigenvalue must be orthonormal.
  EXPECT_LE(la::orthogonality_error(r.eigenvectors.view().as_const()), 1e-9);
}

TEST(ChaseEdge, NearlyFullSubspace) {
  // nev + nex close to n exercises the small-matrix paths everywhere.
  using T = double;
  const la::Index n = 30;
  auto eigs = gen::uniform_spectrum<double>(n, 0.0, 3.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 9);
  ChaseConfig cfg;
  cfg.nev = 20;
  cfg.nex = 8;
  cfg.tol = 1e-8;
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-6);
  }
}

TEST(ChaseEdge, SingleEigenpair) {
  using T = std::complex<double>;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(60, -1.0, 1.0), 11);
  ChaseConfig cfg;
  cfg.nev = 1;
  cfg.nex = 4;
  cfg.tol = 1e-10;
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], -1.0, 1e-8);
}

TEST(ChaseEdge, SinglePrecisionConverges) {
  using T = std::complex<float>;
  const la::Index n = 100;
  auto eigs = gen::uniform_spectrum<float>(n, -2.0f, 2.0f);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 13);
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-4;  // float-appropriate tolerance
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(double(r.eigenvalues[std::size_t(j)]),
                double(eigs[std::size_t(j)]), 2e-3);
  }
}

TEST(ChaseEdge, RealSymmetricDoubleMatchesComplexHermitian) {
  // A real symmetric matrix embedded as complex must give the same spectrum
  // through both instantiations.
  const la::Index n = 70;
  auto eigs = gen::uniform_spectrum<double>(n, 1.0, 4.0);
  auto hr = gen::hermitian_with_spectrum<double>(eigs, 15);
  la::Matrix<std::complex<double>> hc(n, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < n; ++i) hc(i, j) = hr(i, j);
  }
  ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;
  cfg.tol = 1e-10;
  auto rr = solve_sequential<double>(hr.cview(), cfg);
  auto rc = solve_sequential<std::complex<double>>(hc.cview(), cfg);
  ASSERT_TRUE(rr.converged && rc.converged);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(rr.eigenvalues[std::size_t(j)], rc.eigenvalues[std::size_t(j)],
                1e-8);
  }
}


TEST(ChaseEdge, DivideConquerRrSolverMatchesQl) {
  // The D&C reduced-problem solver (the paper's named choice) must give the
  // same convergence and eigenvalues as the QL default.
  using T = std::complex<double>;
  const la::Index n = 110;
  auto eigs = gen::dft_like_spectrum<double>(n, 71);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 71);
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 30;  // subspace large enough to cross the D&C recursion cutoff
  cfg.tol = 1e-9;
  auto ql = solve_sequential<T>(h.cview(), cfg);
  cfg.rr_solver = RrSolver::kDivideConquer;
  auto dc = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(ql.converged);
  ASSERT_TRUE(dc.converged);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(dc.eigenvalues[std::size_t(j)], ql.eigenvalues[std::size_t(j)],
                1e-7);
    EXPECT_NEAR(dc.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-6);
  }
}


TEST(ChaseEdge, TsqrVariantSameConvergence) {
  // TSQR (the CA-QR alternative the paper weighs in Section 3.2) must give
  // the same convergence as the CholeskyQR heuristic — the choice is purely
  // a performance trade-off.
  using T = std::complex<double>;
  const la::Index n = 120;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 81), 81);
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  auto chol = solve_sequential<T>(h.cview(), cfg);
  cfg.qr.force_tsqr = true;
  auto tsqr = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(chol.converged);
  ASSERT_TRUE(tsqr.converged);
  EXPECT_EQ(chol.iterations, tsqr.iterations);
  EXPECT_EQ(chol.matvecs, tsqr.matvecs);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(chol.eigenvalues[std::size_t(j)],
                tsqr.eigenvalues[std::size_t(j)], 1e-8);
  }
}

}  // namespace
}  // namespace chase::core
