// Mixed-precision pipeline: promotion-policy triggers in isolation, the
// CHASE_PRECISION policy plumbing, and end-to-end mixed solves (sequential,
// distributed v1.4, legacy LMS) converging to the fp64 eigenpairs with the
// fp32 filter demonstrably engaged.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "core/legacy_lms.hpp"
#include "core/precision.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "perf/tracker.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

// ---------------------------------------------------------------------------
// PromotionPolicy in isolation: the three triggers, one at a time.

TEST(PromotionPolicy, FloorPromotesOnlyColumnsBelowFloor) {
  engine::PromotionConfig cfg;
  cfg.resid_floor = 1e-5;
  engine::PromotionPolicy p(cfg);
  p.reset(4);
  p.observe(0, 4, {1e-3, 1e-6, 1e-3, 1e-3});
  EXPECT_FALSE(p.column_fp64(0));
  EXPECT_TRUE(p.column_fp64(1));
  EXPECT_FALSE(p.column_fp64(2));
  EXPECT_FALSE(p.column_fp64(3));
  EXPECT_EQ(p.columns_promoted(), 1);
  EXPECT_FALSE(p.subspace_fp64());
}

TEST(PromotionPolicy, StallPromotesAfterConsecutiveStalledIterations) {
  engine::PromotionConfig cfg;
  cfg.resid_floor = 1e-12;  // keep the floor out of the way
  cfg.stall_ratio = 0.85;
  cfg.column_stall_limit = 2;
  engine::PromotionPolicy p(cfg);
  p.reset(2);
  // Column 0 stalls twice in a row; column 1 keeps contracting.
  p.observe(0, 2, {1.0, 1.0});
  p.observe(0, 2, {0.99, 0.5});
  EXPECT_FALSE(p.column_fp64(0)) << "one stall is not enough";
  p.observe(0, 2, {0.985, 0.25});
  EXPECT_TRUE(p.column_fp64(0));
  EXPECT_FALSE(p.column_fp64(1));
  EXPECT_EQ(p.columns_promoted(), 1);
}

TEST(PromotionPolicy, ImprovingColumnResetsItsStallCount) {
  engine::PromotionConfig cfg;
  cfg.resid_floor = 1e-12;
  cfg.stall_ratio = 0.85;
  cfg.column_stall_limit = 2;
  engine::PromotionPolicy p(cfg);
  p.reset(1);
  p.observe(0, 1, {1.0});
  p.observe(0, 1, {0.99});   // stall 1
  p.observe(0, 1, {0.1});    // real progress: counter resets
  p.observe(0, 1, {0.099});  // stall 1 again, not 2
  EXPECT_FALSE(p.column_fp64(0));
  p.observe(0, 1, {0.0985});  // stall 2
  EXPECT_TRUE(p.column_fp64(0));
}

TEST(PromotionPolicy, SubspaceLimitZeroFallsBackImmediately) {
  engine::PromotionConfig cfg;
  cfg.subspace_stall_limit = 0;  // the deterministic-test hook
  engine::PromotionPolicy p(cfg);
  p.reset(3);
  EXPECT_FALSE(p.subspace_fp64());
  p.observe(0, 3, {1.0, 1.0, 1.0});
  EXPECT_TRUE(p.subspace_fp64());
  EXPECT_EQ(p.subspace_promotions(), 1);
  // The subspace flag covers every column, promoted or not.
  EXPECT_TRUE(p.column_fp64(0));
  EXPECT_TRUE(p.column_fp64(2));
}

TEST(PromotionPolicy, SubspaceFallsBackAfterStagnationStreak) {
  engine::PromotionConfig cfg;
  cfg.resid_floor = 1e-12;
  cfg.stall_ratio = 0.85;
  cfg.column_stall_limit = 1000;  // isolate the subspace trigger
  cfg.subspace_stall_limit = 2;
  engine::PromotionPolicy p(cfg);
  p.reset(2);
  p.observe(0, 2, {1.0, 1.0});  // first observation: baseline
  EXPECT_FALSE(p.subspace_fp64());
  p.observe(0, 2, {0.99, 0.99});  // no lock progress, best stalled: streak 1
  EXPECT_FALSE(p.subspace_fp64());
  p.observe(0, 2, {0.985, 0.985});  // streak 2: fall back
  EXPECT_TRUE(p.subspace_fp64());
  EXPECT_EQ(p.subspace_promotions(), 1);
}

TEST(PromotionPolicy, LockingProgressClearsSubspaceStreak) {
  engine::PromotionConfig cfg;
  cfg.resid_floor = 1e-12;
  cfg.column_stall_limit = 1000;
  cfg.subspace_stall_limit = 2;
  engine::PromotionPolicy p(cfg);
  p.reset(4);
  p.observe(0, 4, {1.0, 1.0, 1.0, 1.0});
  p.observe(0, 4, {0.99, 0.99, 0.99, 0.99});  // streak 1
  p.observe(1, 3, {0.0, 0.985, 0.985, 0.985});  // a column locked: streak resets
  p.observe(1, 3, {0.0, 0.98, 0.98, 0.98});     // streak 1 again
  EXPECT_FALSE(p.subspace_fp64());
}

TEST(PromotionPolicy, ResetClearsAllState) {
  engine::PromotionConfig cfg;
  cfg.subspace_stall_limit = 0;
  engine::PromotionPolicy p(cfg);
  p.reset(2);
  p.observe(0, 2, {1e-9, 1e-9});  // floor + immediate subspace fallback
  EXPECT_TRUE(p.subspace_fp64());
  EXPECT_GT(p.columns_promoted(), 0);
  p.reset(2);
  EXPECT_FALSE(p.subspace_fp64());
  EXPECT_FALSE(p.column_fp64(0));
  EXPECT_EQ(p.columns_promoted(), 0);
  EXPECT_EQ(p.subspace_promotions(), 0);
}

// ---------------------------------------------------------------------------
// Policy plumbing.

TEST(PrecisionPolicy, ParseAndName) {
  EXPECT_EQ(parse_precision("double"), Precision::kDouble);
  EXPECT_EQ(parse_precision("mixed"), Precision::kMixed);
  EXPECT_FALSE(parse_precision("single").has_value());
  EXPECT_FALSE(parse_precision("").has_value());
  EXPECT_EQ(precision_name(Precision::kDouble), "double");
  EXPECT_EQ(precision_name(Precision::kMixed), "mixed");
}

TEST(PrecisionPolicy, ScopedOverrideRestores) {
  const Precision before = precision();
  {
    ScopedPrecision outer(Precision::kMixed);
    EXPECT_EQ(precision(), Precision::kMixed);
    {
      ScopedPrecision inner(Precision::kDouble);
      EXPECT_EQ(precision(), Precision::kDouble);
    }
    EXPECT_EQ(precision(), Precision::kMixed);
  }
  EXPECT_EQ(precision(), before);
}

// ---------------------------------------------------------------------------
// End-to-end mixed solves.

template <typename T>
la::Matrix<T> test_matrix(la::Index n) {
  return gen::hermitian_with_spectrum<T>(gen::dft_like_spectrum<double>(n, 7),
                                         7);
}

ChaseConfig small_config() {
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  return cfg;
}

template <typename T>
class MixedSolve : public ::testing::Test {};
TYPED_TEST_SUITE(MixedSolve, chase::testing::DoubleScalarTypes);

TYPED_TEST(MixedSolve, SequentialMatchesDoublePrecision) {
  using T = TypeParam;
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config();

  ChaseResult<T> ref = [&] {
    ScopedPrecision sp(Precision::kDouble);
    return solve_sequential<T>(h.cview(), cfg);
  }();
  ASSERT_TRUE(ref.converged);

  perf::Tracker t;
  perf::set_thread_tracker(&t);
  ChaseResult<T> mixed = [&] {
    ScopedPrecision sp(Precision::kMixed);
    return solve_sequential<T>(h.cview(), cfg);
  }();
  perf::set_thread_tracker(nullptr);

  ASSERT_TRUE(mixed.converged);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(mixed.eigenvalues[std::size_t(j)],
                ref.eigenvalues[std::size_t(j)], 1e-7)
        << "pair " << j;
  }
  // The fp32 filter actually ran, and locked pairs were refined.
  EXPECT_GT(t.counter("precision.filter.cols.fp32"), 0.0);
  EXPECT_GT(t.counter("precision.refine.pairs"), 0.0);
}

TEST(MixedSolve, DistributedV14MatchesSequentialDouble) {
  using T = std::complex<double>;
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config();

  ChaseResult<T> seq = [&] {
    ScopedPrecision sp(Precision::kDouble);
    return solve_sequential<T>(h.cview(), cfg);
  }();
  ASSERT_TRUE(seq.converged);

  ScopedPrecision sp(Precision::kMixed);
  std::vector<perf::Tracker> trackers(4);
  comm::Team team(4);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, 2, 2);
        auto map = dist::IndexMap::block(n, 2);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h.cview());
        auto r = solve(hd, cfg);
        ASSERT_TRUE(r.converged);
        for (la::Index j = 0; j < cfg.nev; ++j) {
          EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                      seq.eigenvalues[std::size_t(j)], 1e-7)
              << "pair " << j;
        }
      },
      &trackers);
  for (const auto& t : trackers) {
    EXPECT_GT(t.counter("precision.filter.cols.fp32"), 0.0);
    EXPECT_GT(t.counter("precision.refine.pairs"), 0.0);
  }
}

TEST(MixedSolve, LegacyLmsMatchesSequentialDouble) {
  using T = std::complex<double>;
  const la::Index n = 80;
  auto h = test_matrix<T>(n);
  auto cfg = small_config();

  ChaseResult<T> seq = [&] {
    ScopedPrecision sp(Precision::kDouble);
    return solve_sequential<T>(h.cview(), cfg);
  }();
  ASSERT_TRUE(seq.converged);

  ScopedPrecision sp(Precision::kMixed);
  std::vector<perf::Tracker> trackers(4);
  comm::Team team(4);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, 2, 2);
        auto map = dist::IndexMap::block(n, 2);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h.cview());
        auto r = solve_lms(hd, cfg);
        ASSERT_TRUE(r.converged);
        for (la::Index j = 0; j < cfg.nev; ++j) {
          EXPECT_NEAR(r.eigenvalues[std::size_t(j)],
                      seq.eigenvalues[std::size_t(j)], 1e-7)
              << "pair " << j;
        }
      },
      &trackers);
  for (const auto& t : trackers) {
    EXPECT_GT(t.counter("precision.filter.cols.fp32"), 0.0);
    EXPECT_GT(t.counter("precision.refine.pairs"), 0.0);
  }
}

TEST(MixedSolve, PerColumnFallbackEngagesDeterministically) {
  // A floor above every reachable residual promotes each active column the
  // first time it is observed, so from iteration 2 on the filter runs the
  // promoted columns in fp64 — while the subspace trigger stays quiet.
  using T = double;
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config();

  engine::PromotionConfig pc;
  pc.resid_floor = 1e9;
  pc.subspace_stall_limit = 1000;
  ScopedPromotionConfig spc(pc);
  ScopedPrecision sp(Precision::kMixed);

  perf::Tracker t;
  perf::set_thread_tracker(&t);
  auto r = solve_sequential<T>(h.cview(), cfg);
  perf::set_thread_tracker(nullptr);

  ASSERT_TRUE(r.converged);
  EXPECT_GT(t.counter("precision.promote.column"), 0.0);
  EXPECT_GT(t.counter("precision.filter.cols.fp64"), 0.0);
  EXPECT_GT(t.counter("precision.filter.cols.fp32"), 0.0)
      << "iteration 1 runs before any residual is observed";
  EXPECT_EQ(t.counter("precision.promote.subspace"), 0.0);
}

TEST(MixedSolve, SubspaceFallbackEngagesDeterministically) {
  // subspace_stall_limit <= 0 falls back at the first observation: the whole
  // panel filters in fp64 afterwards without any per-column promotions.
  using T = double;
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config();

  engine::PromotionConfig pc;
  pc.resid_floor = 0.0;  // keep the per-column floor out of the way
  pc.column_stall_limit = 1000;
  pc.subspace_stall_limit = 0;
  ScopedPromotionConfig spc(pc);
  ScopedPrecision sp(Precision::kMixed);

  perf::Tracker t;
  perf::set_thread_tracker(&t);
  auto r = solve_sequential<T>(h.cview(), cfg);
  perf::set_thread_tracker(nullptr);

  ASSERT_TRUE(r.converged);
  EXPECT_GE(t.counter("precision.promote.subspace"), 1.0);
  EXPECT_GT(t.counter("precision.filter.cols.fp64"), 0.0);
  EXPECT_EQ(t.counter("precision.promote.column"), 0.0);
}

}  // namespace
}  // namespace chase::core
