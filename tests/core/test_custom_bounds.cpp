// Expert spectral-bound overrides and the filter divergence guard.
#include <gtest/gtest.h>

#include <complex>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"

namespace chase::core {
namespace {

TEST(CustomBounds, SkipsLanczosAndConverges) {
  using T = double;
  const la::Index n = 100;
  auto eigs = gen::uniform_spectrum<double>(n, -1.0, 3.0);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 51);

  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  cfg.use_custom_bounds = true;
  cfg.custom_b_sup = 3.05;   // valid: above lambda_max
  cfg.custom_mu_1 = -1.0;
  cfg.custom_mu_ne = eigs[std::size_t(cfg.subspace())];
  auto r = solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.bounds.b_sup, 3.05);
  for (la::Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
  }
}

TEST(CustomBounds, UnderestimatedBSupIsDetectedNotPropagated) {
  using T = double;
  const la::Index n = 80;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 0.0, 10.0), 53);

  ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;
  cfg.use_custom_bounds = true;
  cfg.custom_b_sup = 5.0;  // lambda_max = 10: the filter will diverge
  cfg.custom_mu_1 = 0.0;
  cfg.custom_mu_ne = 1.0;
  cfg.max_iterations = 10;
  auto r = solve_sequential<T>(h.cview(), cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 3);  // blow-up caught within the first iterations
  // No NaNs escape into the reported values.
  for (double v : r.eigenvalues) EXPECT_TRUE(std::isfinite(v));
}

TEST(CustomBounds, InvalidOrderingThrows) {
  using T = double;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(30, 0.0, 1.0), 55);
  ChaseConfig cfg;
  cfg.nev = 4;
  cfg.nex = 2;
  cfg.use_custom_bounds = true;
  cfg.custom_b_sup = 0.5;
  cfg.custom_mu_1 = 1.0;  // mu_1 > b_sup
  cfg.custom_mu_ne = 0.7;
  EXPECT_THROW(solve_sequential<T>(h.cview(), cfg), Error);
}

TEST(CustomBounds, DistributedGuardIsConsensusSafe) {
  // The divergence verdict must be identical on every rank (otherwise the
  // SPMD control flow would deadlock); run the bad-bounds case distributed.
  using T = double;
  const la::Index n = 64;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 0.0, 10.0), 57);
  ChaseConfig cfg;
  cfg.nev = 5;
  cfg.nex = 3;
  cfg.use_custom_bounds = true;
  cfg.custom_b_sup = 5.0;
  cfg.custom_mu_1 = 0.0;
  cfg.custom_mu_ne = 1.0;
  cfg.max_iterations = 8;

  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());
    auto r = solve(hd, cfg);
    EXPECT_FALSE(r.converged);
  });
}

}  // namespace
}  // namespace chase::core
