#include "core/generalized.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "gen/spectrum.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

using chase::testing::random_matrix;
using la::Index;

/// HPD overlap matrix: G^H G + n I scaled to unit-ish diagonal.
template <typename T>
la::Matrix<T> overlap_matrix(Index n, std::uint64_t seed) {
  auto g = random_matrix<T>(n, n, seed);
  la::Matrix<T> b(n, n);
  la::gram(g.cview(), b.view());
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) b(i, j) /= RealType<T>(n);
  }
  for (Index j = 0; j < n; ++j) b(j, j) += T(1);
  return b;
}

template <typename T>
class GeneralizedTyped : public ::testing::Test {};
TYPED_TEST_SUITE(GeneralizedTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(GeneralizedTyped, MatchesDirectGeneralizedSolve) {
  using T = TypeParam;
  const Index n = 80, nev = 8;
  auto a = chase::testing::random_hermitian<T>(n, 1);
  auto b = overlap_matrix<T>(n, 2);

  ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  auto r = solve_generalized<T>(a.cview(), b.cview(), cfg);
  ASSERT_TRUE(r.converged);

  // Direct reference: eigenvalues of R^{-H} A R^{-1}.
  auto rb = la::clone(b.cview());
  ASSERT_EQ(la::potrf_upper(rb.view()), 0);
  auto at = la::clone(a.cview());
  // at <- R^{-H} A R^{-1}: solve from both sides.
  la::trsm_left_upper_conj(rb.view().as_const(), at.view());
  // Right side: (R^{-H} A) R^{-1} = solve (.) R = X -> use column solves on
  // the conjugate-transposed relation: X R = M => X = M R^{-1}.
  la::trsm_right_upper(rb.view().as_const(), at.view());
  std::vector<double> w;
  la::Matrix<T> z(n, n);
  la::heevd(at.view(), w, z.view());
  for (Index j = 0; j < nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], w[std::size_t(j)], 1e-8);
  }

  // Generalized eigen equation: || A x - lambda B x || small.
  la::Matrix<T> ax(n, nev), bx(n, nev);
  la::gemm(T(1), a.cview(), r.eigenvectors.view().as_const(), T(0),
           ax.view());
  la::gemm(T(1), b.cview(), r.eigenvectors.view().as_const(), T(0),
           bx.view());
  for (Index k = 0; k < nev; ++k) {
    double err = 0;
    for (Index i = 0; i < n; ++i) {
      const T d = ax(i, k) - T(r.eigenvalues[std::size_t(k)]) * bx(i, k);
      err += double(real_part(conjugate(d) * d));
    }
    EXPECT_LE(std::sqrt(err), 1e-7) << "pair " << k;
  }

  // B-orthonormality: X^H B X = I.
  la::Matrix<T> xhbx(nev, nev);
  la::gemm(T(1), la::Op::kConjTrans, r.eigenvectors.view().as_const(),
           la::Op::kNoTrans, bx.cview(), T(0), xhbx.view());
  for (Index j = 0; j < nev; ++j) {
    for (Index i = 0; i < nev; ++i) {
      const double expect = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(double(real_part(xhbx(i, j))), expect, 1e-9);
      EXPECT_NEAR(double(imag_part(xhbx(i, j))), 0.0, 1e-9);
    }
  }
}

TYPED_TEST(GeneralizedTyped, IdentityOverlapReducesToStandard) {
  using T = TypeParam;
  const Index n = 70;
  auto eigs = gen::uniform_spectrum<double>(n, -1.0, 2.0);
  auto a = gen::hermitian_with_spectrum<T>(eigs, 3);
  la::Matrix<T> b(n, n);
  la::set_identity(b.view());

  ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;
  cfg.tol = 1e-10;
  auto r = solve_generalized<T>(a.cview(), b.cview(), cfg);
  ASSERT_TRUE(r.converged);
  for (Index j = 0; j < cfg.nev; ++j) {
    EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
  }
}

TEST(Generalized, RejectsIndefiniteOverlap) {
  using T = double;
  const Index n = 20;
  auto a = chase::testing::random_hermitian<T>(n, 5);
  la::Matrix<T> b(n, n);
  la::set_identity(b.view());
  b(3, 3) = -1.0;  // indefinite
  ChaseConfig cfg;
  cfg.nev = 3;
  cfg.nex = 3;
  EXPECT_THROW(solve_generalized<T>(a.cview(), b.cview(), cfg), Error);
}

}  // namespace
}  // namespace chase::core
