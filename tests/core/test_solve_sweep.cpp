// Parameterized end-to-end sweep: ChASE must converge to the prescribed
// spectrum across spectrum families, subspace fractions and grid layouts.
#include <gtest/gtest.h>

#include <complex>
#include <tuple>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"

namespace chase::core {
namespace {

using Param = std::tuple<int /*spectrum*/, int /*nev*/, int /*grid p*/>;

std::vector<double> spectrum_of(int kind, la::Index n) {
  switch (kind) {
    case 0:
      return gen::uniform_spectrum<double>(n, -1.0, 1.0);
    case 1:
      return gen::dft_like_spectrum<double>(n, 61);
    case 2:
    default:
      return gen::bse_like_spectrum<double>(n, 62);
  }
}

const char* spectrum_name(int kind) {
  return kind == 0 ? "uniform" : kind == 1 ? "dft" : "bse";
}

class SolveSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SolveSweep, ConvergesToPrescribedSpectrum) {
  using T = std::complex<double>;
  const auto [kind, nev, p] = GetParam();
  const la::Index n = 96;
  auto eigs = spectrum_of(kind, n);
  auto h = gen::hermitian_with_spectrum<T>(eigs, 63 + std::uint64_t(kind));

  ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = std::max<la::Index>(nev / 3, 4);
  cfg.tol = 1e-9;

  if (p == 1) {
    auto r = solve_sequential<T>(h.cview(), cfg);
    ASSERT_TRUE(r.converged);
    for (la::Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-6);
    }
  } else {
    comm::Team team(p * p);
    team.run([&, nev = nev](comm::Communicator& world) {
      comm::Grid2d grid(world, p, p);
      auto map = dist::IndexMap::block(n, p);
      dist::DistHermitianMatrix<T> hd(grid, map, map);
      hd.fill_from_global(h.cview());
      ChaseConfig dcfg = cfg;
      dcfg.nev = nev;
      auto r = solve(hd, dcfg);
      ASSERT_TRUE(r.converged);
      for (la::Index j = 0; j < dcfg.nev; ++j) {
        EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)],
                    1e-6);
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spectra, SolveSweep,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(4, 12),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(spectrum_name(std::get<0>(info.param))) + "_nev" +
             std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace chase::core
