// Backend-equivalence suite for the layered solver engine: the staged
// pipeline (core/engine) over the DLA backends (core/dla_dense.hpp) must
// reproduce the frozen pre-refactor monolithic drivers (bench/seed_driver.hpp)
// bit-for-bit — same eigenvalues, same local eigenvector entries, same
// iteration and MatVec counts — on every grid shape and scalar type, for both
// the v1.4 scheme and the legacy LMS scheme. The suite also pins the
// zero-allocation workspace contract (iterations >= 2 never grow the arena)
// and drives a matrix-free operator, including the begin_apply hook path,
// through the staged engine.
#include <gtest/gtest.h>

#include <complex>

#include "bench/seed_driver.hpp"
#include "core/legacy_lms.hpp"
#include "core/operator.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "tests/testing.hpp"

namespace chase::core {
namespace {

template <typename T>
ChaseConfig small_config() {
  ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  return cfg;
}

template <typename T>
la::Matrix<T> test_matrix(la::Index n) {
  return gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, 33), 33);
}

/// Bitwise comparison of a staged-engine result against the seed oracle:
/// the refactor reorganized the code, not the arithmetic, so every float
/// must match exactly.
template <typename T>
void expect_bitwise_equal(const ChaseResult<T>& staged,
                          const ChaseResult<T>& seed) {
  ASSERT_EQ(staged.converged, seed.converged);
  EXPECT_EQ(staged.iterations, seed.iterations);
  EXPECT_EQ(staged.matvecs, seed.matvecs);
  EXPECT_EQ(staged.bounds.b_sup, seed.bounds.b_sup);
  EXPECT_EQ(staged.bounds.mu_1, seed.bounds.mu_1);
  EXPECT_EQ(staged.bounds.mu_ne, seed.bounds.mu_ne);
  ASSERT_EQ(staged.eigenvalues.size(), seed.eigenvalues.size());
  for (std::size_t j = 0; j < seed.eigenvalues.size(); ++j) {
    EXPECT_EQ(staged.eigenvalues[j], seed.eigenvalues[j]) << "value " << j;
  }
  ASSERT_EQ(staged.eigenvectors.rows(), seed.eigenvectors.rows());
  ASSERT_EQ(staged.eigenvectors.cols(), seed.eigenvectors.cols());
  for (la::Index j = 0; j < seed.eigenvectors.cols(); ++j) {
    for (la::Index i = 0; i < seed.eigenvectors.rows(); ++i) {
      EXPECT_EQ(staged.eigenvectors(i, j), seed.eigenvectors(i, j))
          << "entry (" << i << "," << j << ")";
    }
  }
  ASSERT_EQ(staged.stats.size(), seed.stats.size());
  for (std::size_t k = 0; k < seed.stats.size(); ++k) {
    EXPECT_EQ(staged.stats[k].locked_after, seed.stats[k].locked_after);
    EXPECT_EQ(staged.stats[k].matvecs, seed.stats[k].matvecs);
    EXPECT_EQ(staged.stats[k].max_residual, seed.stats[k].max_residual);
  }
}

struct GridCase {
  int nprow;
  int npcol;
};

class EngineGolden : public ::testing::TestWithParam<GridCase> {};

template <typename T>
void run_golden_case(int nprow, int npcol) {
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  comm::Team team(nprow * npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, nprow, npcol);
    auto rmap = dist::IndexMap::block(n, nprow);
    auto cmap = dist::IndexMap::block(n, npcol);
    // Fresh operators per run: the filter's diagonal shifts are restored on
    // exit, but independence keeps the comparison airtight.
    dist::DistHermitianMatrix<T> hd_staged(grid, rmap, cmap);
    hd_staged.fill_from_global(h.cview());
    dist::DistHermitianMatrix<T> hd_seed(grid, rmap, cmap);
    hd_seed.fill_from_global(h.cview());

    auto staged = solve(hd_staged, cfg);
    auto seed = seeddrv::solve(hd_seed, cfg);
    ASSERT_TRUE(seed.converged);
    expect_bitwise_equal(staged, seed);
  });
}

TEST_P(EngineGolden, RealMatchesSeedDriverBitwise) {
  run_golden_case<double>(GetParam().nprow, GetParam().npcol);
}

TEST_P(EngineGolden, ComplexMatchesSeedDriverBitwise) {
  run_golden_case<std::complex<double>>(GetParam().nprow, GetParam().npcol);
}

INSTANTIATE_TEST_SUITE_P(Grids, EngineGolden,
                         ::testing::Values(GridCase{1, 1}, GridCase{2, 2},
                                           GridCase{2, 3}),
                         [](const auto& info) {
                           return std::to_string(info.param.nprow) + "x" +
                                  std::to_string(info.param.npcol);
                         });

template <typename T>
void run_lms_golden_case() {
  const la::Index n = 80;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd_staged(grid, map, map);
    hd_staged.fill_from_global(h.cview());
    dist::DistHermitianMatrix<T> hd_seed(grid, map, map);
    hd_seed.fill_from_global(h.cview());

    auto staged = solve_lms(hd_staged, cfg);
    auto seed = seeddrv::solve_lms(hd_seed, cfg);
    ASSERT_TRUE(seed.converged);
    expect_bitwise_equal(staged, seed);
  });
}

TEST(EngineLms, RealMatchesSeedDriverBitwise) {
  run_lms_golden_case<double>();
}

TEST(EngineLms, ComplexMatchesSeedDriverBitwise) {
  run_lms_golden_case<std::complex<double>>();
}

TEST(EngineWorkspace, SteadyStateIterationsNeverGrowTheArena) {
  using T = std::complex<double>;
  const la::Index n = 96;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();
  cfg.tol = 1e-11;  // enough iterations to exercise the steady state

  for (bool lms : {false, true}) {
    std::vector<perf::Tracker> trackers(4);
    comm::Team team(4);
    team.run(
        [&](comm::Communicator& world) {
          comm::Grid2d grid(world, 2, 2);
          auto map = dist::IndexMap::block(n, 2);
          dist::DistHermitianMatrix<T> hd(grid, map, map);
          hd.fill_from_global(h.cview());
          auto r = lms ? solve_lms(hd, cfg) : solve(hd, cfg);
          ASSERT_TRUE(r.converged);
          ASSERT_GE(r.iterations, 2);
          // The pipeline records arena growth per iteration; the setup-time
          // reservations cover everything, so even iteration 1 is clean.
          for (const auto& s : r.stats) {
            EXPECT_EQ(s.workspace_allocs, 0)
                << (lms ? "lms" : "v1.4") << " iteration " << s.iteration;
          }
        },
        &trackers);
    for (const auto& t : trackers) {
      EXPECT_EQ(t.counter("workspace.steady_growth"), 0.0);
      // The per-stage timing counters exist and count every iteration.
      EXPECT_GT(t.counter("engine.stage.filter.calls"), 0.0);
      EXPECT_GT(t.counter("engine.stage.qr.calls"), 0.0);
      EXPECT_EQ(t.counter("engine.stage.filter.calls"),
                t.counter("engine.stage.locking.calls"));
    }
  }
}

/// Matrix-backed row functor (same as test_operator.cpp's DenseRow).
template <typename T>
struct DenseRow {
  const la::Matrix<T>* h;
  T operator()(la::Index row, la::ConstMatrixView<T> x, la::Index col) const {
    T acc(0);
    for (la::Index k = 0; k < h->rows(); ++k) acc += (*h)(row, k) * x(k, col);
    return acc;
  }
};

TEST(EngineMatrixFree, GatherBufferBoundToWorkspace) {
  // Satellite of the workspace arena: the matrix-free adapter's gathered
  // input lives in the SolverWorkspace, so repeated applies inside the
  // engine never grow a private buffer either.
  using T = double;
  const la::Index n = 64;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  std::vector<perf::Tracker> trackers(4);
  comm::Team team(4);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, 2, 2);
        auto map = dist::IndexMap::block(n, 2);
        MatrixFreeOperator<T, DenseRow<T>> hop(grid, map, map,
                                               DenseRow<T>{&h});
        auto r = solve(hop, cfg);
        ASSERT_TRUE(r.converged);
        for (const auto& s : r.stats) {
          EXPECT_EQ(s.workspace_allocs, 0) << "iteration " << s.iteration;
        }
      },
      &trackers);
  for (const auto& t : trackers) {
    EXPECT_EQ(t.counter("workspace.steady_growth"), 0.0);
  }
}

template <typename T>
struct LapRow {
  Laplacian3D<T> lap;
  long* begin_applies;

  void begin_apply(la::ConstMatrixView<T> /*x*/) const { ++*begin_applies; }

  T operator()(la::Index row, la::ConstMatrixView<T> x, la::Index col) const {
    return lap(row, x, col);
  }
};

TEST(EngineMatrixFree, Laplacian3DConvergesToExactSpectrum) {
  using T = double;
  Laplacian3D<T> lap{6, 5, 4};
  const la::Index n = lap.size();  // 120
  const auto exact = lap.exact_eigenvalues();

  ChaseConfig cfg;
  cfg.nev = 10;
  cfg.nex = 8;
  cfg.tol = 1e-10;

  comm::Team team(6);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 3);
    auto rmap = dist::IndexMap::block(n, 2);
    auto cmap = dist::IndexMap::block(n, 3);
    long begin_applies = 0;
    MatrixFreeOperator<T, LapRow<T>> hop(grid, rmap, cmap,
                                         LapRow<T>{lap, &begin_applies});
    auto r = solve(hop, cfg);
    ASSERT_TRUE(r.converged);
    for (la::Index j = 0; j < cfg.nev; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)], exact[std::size_t(j)], 1e-8)
          << "pair " << j;
    }
    // The hook runs once per gathered block: at minimum once per filtered
    // MatVec batch, plus the Rayleigh-Ritz / residual applications.
    EXPECT_GT(begin_applies, r.iterations);
  });
}

TEST(EngineObserver, RecoveryRetriesStillNotifyObserver) {
  // Regression test for the monolith's NaN-recovery path, which `continue`d
  // past the observer: every recorded iteration — including filter-recovery
  // retries — must reach after_iteration, so observer counts equal
  // result.stats.size() always.
  using T = double;
  const la::Index n = 72;
  auto h = test_matrix<T>(n);
  auto cfg = small_config<T>();

  struct CountingObserver : ChaseObserver<T> {
    int filters = 0;
    int iterations = 0;
    void after_filter(int, int, la::ConstMatrixView<T>, double) override {
      ++filters;
    }
    void after_iteration(const IterationStats&) override { ++iterations; }
  };

  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());
    CountingObserver obs;
    auto r = solve(hd, cfg, &obs);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(obs.iterations, int(r.stats.size()));
    EXPECT_EQ(obs.iterations, r.iterations);
    EXPECT_EQ(obs.filters, obs.iterations);
  });
}

}  // namespace
}  // namespace chase::core
