// ABFT corruption sentinels: the Fletcher-checksummed allreduce must detect
// and replay injected transport corruption (allreduce.corrupt, p2p.corrupt),
// poison the team when corruption persists past the replay budget, and the
// checksum-column lane must localize HEMM payload damage — all without
// perturbing a clean solve's numerics.
#include "coll/abft.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "coll/engine.hpp"
#include "comm/communicator.hpp"
#include "common/faultinject.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "tests/testing.hpp"

namespace chase::coll {
namespace {

TEST(AbftUnit, ColumnMismatchFlagsCorruptedColumnOnly) {
  la::Matrix<double> m(6, 3);
  for (Index j = 0; j < 3; ++j) {
    for (Index i = 0; i < 6; ++i) m(i, j) = double(i + 7 * j);
  }
  std::vector<double> chk;
  column_checksums(m.cview(), chk);
  EXPECT_EQ(column_mismatch(m.cview(), chk), -1);

  m(2, 1) += 0.5;  // breaks sum-then-reduce == reduce-then-sum for column 1
  EXPECT_EQ(column_mismatch(m.cview(), chk), 1);
  m(2, 1) -= 0.5;

  m(4, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(column_mismatch(m.cview(), chk), 2);  // NaN counts as mismatch
}

TEST(AbftUnit, BufferFiniteSeesComplexAndIntegral) {
  std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_TRUE(buffer_finite(x.data(), 3));
  x[1] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(buffer_finite(x.data(), 3));

  std::vector<std::complex<double>> z{{1.0, 2.0}};
  EXPECT_TRUE(buffer_finite(z.data(), 1));
  z[0] = {0.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(buffer_finite(z.data(), 1));

  std::vector<int> k{1, 2};
  EXPECT_TRUE(buffer_finite(k.data(), 2));  // integral: always finite
}

TEST(Abft, CheckedAllReduceRepairsInjectedCorruption) {
  ScopedAbft abft(true);
  // Every rank's first allreduce result gets one NaN element; the suspicious
  // bit trips even though the corruption is rank-uniform, and the replay
  // (budget now exhausted) returns the true sums everywhere.
  fault::Scoped corrupt("allreduce.corrupt", /*rank=*/-1, /*times=*/1);
  std::atomic<int> ok{0};
  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    std::vector<double> x(8, double(world.rank() + 1));
    checked_all_reduce(world, x.data(), 8);
    bool good = true;
    for (double v : x) good = good && v == 10.0;  // 1+2+3+4, exact
    if (good) ++ok;
  });
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(fault::fire_count("allreduce.corrupt"), 4);  // once per rank
}

TEST(Abft, PersistentCorruptionPoisonsTeam) {
  ScopedAbft abft(true);
  fault::Scoped corrupt("allreduce.corrupt", /*rank=*/-1, /*times=*/-1);
  comm::Team team(4);
  try {
    team.run([&](comm::Communicator& world) {
      std::vector<double> x(8, double(world.rank() + 1));
      checked_all_reduce(world, x.data(), 8);
    });
    FAIL() << "expected TeamAborted";
  } catch (const comm::TeamAborted& aborted) {
    EXPECT_EQ(aborted.error().site, "abft.allreduce");
  }
}

TEST(Abft, P2pCorruptionDetectedByChecksummedBlockReduce) {
  ScopedAbft abft(true);
  ScopedAlgorithm ring(Algorithm::kRing);  // route through the p2p channels
  // Rank 0's first chunk send has its leading bytes flipped to 0xFF — a NaN
  // pattern for double payloads — modelling transport corruption under the
  // reduction. The block replays and comes out exact.
  fault::Scoped corrupt("p2p.corrupt", /*rank=*/0, /*times=*/1);
  std::atomic<int> ok{0};
  comm::Team team(2);
  team.run([&](comm::Communicator& world) {
    la::Matrix<double> block(16, 3);
    for (Index j = 0; j < 3; ++j) {
      for (Index i = 0; i < 16; ++i) {
        block(i, j) = double((world.rank() + 1) * (i + 1 + 16 * j));
      }
    }
    checked_block_reduce(world, block.view());
    bool good = true;
    for (Index j = 0; j < 3; ++j) {
      for (Index i = 0; i < 16; ++i) {
        good = good && block(i, j) == double(3 * (i + 1 + 16 * j));
      }
    }
    if (good) ++ok;
  });
  EXPECT_EQ(ok.load(), 2);
  EXPECT_EQ(fault::fire_count("p2p.corrupt"), 1);
}

TEST(Abft, DisabledPathIsPlainAllReduce) {
  // ABFT off: checked_all_reduce must not save/verify/replay — a corrupted
  // result passes through untouched (which is exactly the failure mode the
  // sentinels exist to close).
  ScopedAbft abft(false);
  fault::Scoped corrupt("allreduce.corrupt", /*rank=*/-1, /*times=*/1);
  std::atomic<int> nan_seen{0};
  comm::Team team(2);
  team.run([&](comm::Communicator& world) {
    std::vector<double> x(4, double(world.rank() + 1));
    checked_all_reduce(world, x.data(), 4);
    for (double v : x) {
      if (std::isnan(v)) ++nan_seen;
    }
  });
  EXPECT_GT(nan_seen.load(), 0);
}

TEST(Abft, SolveWithAbftRidesOutInjectedCorruption) {
  using T = double;
  const Index n = 64;
  auto h = gen::hermitian_with_spectrum<T>(gen::dft_like_spectrum<double>(n, 71),
                                           71);
  core::ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;

  auto clean = core::solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);

  ScopedAbft abft(true);
  // Corrupt every rank's first allreduce of outer iteration 2 — with ABFT on
  // that is the filter's checked block reduction, so the sentinel repairs it
  // in place and the solve finishes as if nothing happened.
  fault::Scoped corrupt("allreduce.corrupt", /*rank=*/-1, /*times=*/1,
                        /*skip=*/0, /*iter=*/2);
  std::vector<double> eigs;
  comm::Team team(4);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, 2, 2);
    auto map = dist::IndexMap::block(n, 2);
    dist::DistHermitianMatrix<T> hd(grid, map, map);
    hd.fill_from_global(h.cview());
    auto r = core::solve(hd, cfg);
    ASSERT_TRUE(r.converged);
    if (world.rank() == 0) eigs = r.eigenvalues;
  });
  EXPECT_EQ(fault::fire_count("allreduce.corrupt"), 4);
  ASSERT_EQ(eigs.size(), clean.eigenvalues.size());
  for (std::size_t j = 0; j < eigs.size(); ++j) {
    EXPECT_NEAR(eigs[j], clean.eigenvalues[j], 1e-7) << "pair " << j;
  }
}

}  // namespace
}  // namespace chase::coll
