// Checkpoint/restart property suite: snapshot wire-format round trips,
// corruption rejection, sink double-buffer fallback, and the headline
// guarantee — a solve interrupted at an iteration boundary and resumed from
// its snapshot finishes bitwise-identical to an uninterrupted run, for the
// sequential, distributed v1.4, and legacy LMS drivers.
#include "ckpt/engine.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <filesystem>
#include <mutex>

#include "ckpt/restart.hpp"
#include "ckpt/sink.hpp"
#include "ckpt/snapshot.hpp"
#include "core/legacy_lms.hpp"
#include "core/sequence.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "tests/testing.hpp"

namespace chase::ckpt {
namespace {

template <typename T>
Snapshot<T> sample_snapshot(Index n, Index ne) {
  using R = RealType<T>;
  Snapshot<T> s;
  s.n = n;
  s.ne = ne;
  s.iter = 7;
  s.locked = ne / 2;
  s.nan_recoveries = 1;
  s.matvecs = 12345;
  s.seed = 2023;
  s.rng_stream = 5;
  s.b_sup = 3.5;
  s.mu_1 = -1.25;
  s.mu_ne = 0.75;
  Rng rng(99);
  for (Index j = 0; j < ne; ++j) {
    s.ritz.push_back(R(j) / R(10) - R(1));
    s.resid.push_back(R(1) / R(j + 2));
    s.degs.push_back(int(10 + 2 * j));
  }
  s.v.resize(n, ne);
  for (Index j = 0; j < ne; ++j) {
    for (Index i = 0; i < n; ++i) s.v(i, j) = rng.gaussian<T>();
  }
  return s;
}

template <typename T>
class SnapshotTyped : public ::testing::Test {};
using ::testing::Types;
TYPED_TEST_SUITE(SnapshotTyped, chase::testing::ScalarTypes, );

TYPED_TEST(SnapshotTyped, EncodeDecodeRoundTripsBitwise) {
  using T = TypeParam;
  auto s = sample_snapshot<T>(17, 6);
  std::vector<unsigned char> blob;
  encode(s, blob);
  Snapshot<T> d;
  ASSERT_TRUE(decode(blob, d));
  EXPECT_EQ(d.n, s.n);
  EXPECT_EQ(d.ne, s.ne);
  EXPECT_EQ(d.iter, s.iter);
  EXPECT_EQ(d.locked, s.locked);
  EXPECT_EQ(d.nan_recoveries, s.nan_recoveries);
  EXPECT_EQ(d.matvecs, s.matvecs);
  EXPECT_EQ(d.seed, s.seed);
  EXPECT_EQ(d.rng_stream, s.rng_stream);
  EXPECT_EQ(d.b_sup, s.b_sup);
  EXPECT_EQ(d.mu_1, s.mu_1);
  EXPECT_EQ(d.mu_ne, s.mu_ne);
  EXPECT_EQ(d.ritz, s.ritz);
  EXPECT_EQ(d.resid, s.resid);
  EXPECT_EQ(d.degs, s.degs);
  for (Index j = 0; j < s.ne; ++j) {
    for (Index i = 0; i < s.n; ++i) EXPECT_EQ(d.v(i, j), s.v(i, j));
  }
}

TYPED_TEST(SnapshotTyped, DecodeRejectsCorruption) {
  using T = TypeParam;
  auto s = sample_snapshot<T>(9, 4);
  std::vector<unsigned char> blob;
  encode(s, blob);
  Snapshot<T> d;

  // Any single flipped byte must fail the CRC.
  for (std::size_t pos : {std::size_t(0), blob.size() / 2, blob.size() - 1}) {
    auto bad = blob;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(decode(bad, d)) << "flip at " << pos;
  }
  // Truncation and trailing garbage are corruption too.
  auto cut = blob;
  cut.resize(cut.size() - 5);
  EXPECT_FALSE(decode(cut, d));
  EXPECT_FALSE(decode(std::vector<unsigned char>{}, d));
}

TEST(Snapshot, DecodeRejectsScalarMismatch) {
  auto s = sample_snapshot<double>(9, 4);
  std::vector<unsigned char> blob;
  encode(s, blob);
  Snapshot<float> wrong;
  EXPECT_FALSE(decode(blob, wrong));  // tag mismatch, CRC intact
  Snapshot<std::complex<double>> wrong_z;
  EXPECT_FALSE(decode(blob, wrong_z));
}

TEST(MemorySinkTest, DoubleBufferKeepsTwoNewestAndFallsBack) {
  MemorySink sink;
  auto s1 = sample_snapshot<double>(8, 3);
  std::vector<unsigned char> b1, b2, b3;
  s1.iter = 1;
  encode(s1, b1);
  s1.iter = 2;
  encode(s1, b2);
  s1.iter = 3;
  encode(s1, b3);
  sink.store(b1, 1);
  sink.store(b2, 2);
  sink.store(b3, 3);  // evicts iter 1 (two slots)
  auto all = sink.load_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], b3);  // newest first
  EXPECT_EQ(all[1], b2);

  // Corrupt the newest in place: load_last_good falls back to the older one.
  auto bad = b3;
  bad[bad.size() / 2] ^= 0xFF;
  sink.store(bad, 4);
  Snapshot<double> got;
  ASSERT_TRUE(load_last_good(sink, got));
  EXPECT_EQ(got.iter, 3);  // blob b3 (stored at "iter 3" payload)
}

TEST(FileSinkTest, RoundTripPruneAndCorruptFallback) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "chase_ckpt_test_filesink";
  fs::remove_all(dir);
  {
    FileSink sink(dir.string());
    auto s = sample_snapshot<double>(8, 3);
    std::vector<unsigned char> blob;
    for (long it : {1, 2, 3}) {
      s.iter = it;
      encode(s, blob);
      sink.store(blob, it);
    }
    // Pruned to the newest two generations on disk.
    std::size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++files;
    }
    EXPECT_EQ(files, 2u);

    Snapshot<double> got;
    ASSERT_TRUE(load_last_good(sink, got));
    EXPECT_EQ(got.iter, 3);

    // Corrupt the newest file on disk: the loader falls back to iter 2.
    const fs::path newest = dir / "chase_ckpt_3.bin";
    ASSERT_TRUE(fs::exists(newest));
    std::FILE* f = std::fopen(newest.string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 10, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
    ASSERT_TRUE(load_last_good(sink, got));
    EXPECT_EQ(got.iter, 2);
  }
  fs::remove_all(dir);
}

TEST(CheckpointPolicy, ScopedIntervalOverridesEnvironment) {
  ScopedCheckpointInterval scoped(4);
  EXPECT_EQ(checkpoint_interval(), 4);
  CheckpointEngine<double> engine(nullptr);
  EXPECT_FALSE(engine.enabled());  // no sink
  MemorySink sink;
  CheckpointEngine<double> with_sink(&sink);
  EXPECT_TRUE(with_sink.enabled());
  EXPECT_EQ(with_sink.interval(), 4);
  EXPECT_TRUE(with_sink.due(8));
  EXPECT_FALSE(with_sink.due(9));
}

// ---- bitwise resume-vs-uninterrupted properties ----

template <typename T>
la::Matrix<T> test_hamiltonian(Index n, std::uint64_t seed) {
  return gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, unsigned(seed)), unsigned(seed));
}

core::ChaseConfig small_cfg() {
  core::ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  return cfg;
}

template <typename T>
void expect_bitwise_equal(const core::ChaseResult<T>& a,
                          const core::ChaseResult<T>& b) {
  ASSERT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.matvecs, b.matvecs);
  ASSERT_EQ(a.eigenvalues.size(), b.eigenvalues.size());
  for (std::size_t j = 0; j < a.eigenvalues.size(); ++j) {
    EXPECT_EQ(a.eigenvalues[j], b.eigenvalues[j]) << "eigenvalue " << j;
  }
  ASSERT_EQ(a.eigenvectors.rows(), b.eigenvectors.rows());
  ASSERT_EQ(a.eigenvectors.cols(), b.eigenvectors.cols());
  for (Index j = 0; j < a.eigenvectors.cols(); ++j) {
    for (Index i = 0; i < a.eigenvectors.rows(); ++i) {
      ASSERT_EQ(a.eigenvectors(i, j), b.eigenvectors(i, j))
          << "eigenvector entry (" << i << ", " << j << ")";
    }
  }
}

template <typename T>
class ResumeTyped : public ::testing::Test {};
TYPED_TEST_SUITE(ResumeTyped, chase::testing::DoubleScalarTypes, );

TYPED_TEST(ResumeTyped, SequentialResumeIsBitwiseEqualToUninterrupted) {
  using T = TypeParam;
  const Index n = 120;
  auto h = test_hamiltonian<T>(n, 51);
  auto cfg = small_cfg();

  auto clean = core::solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);

  // Interrupt: cap the run at 3 iterations while checkpointing every one.
  MemorySink sink;
  {
    CheckpointEngine<T> engine(&sink, /*interval=*/1);
    SolveCkpt<T> ck;
    ck.engine = &engine;
    auto cut_cfg = cfg;
    cut_cfg.max_iterations = 3;
    auto cut = core::solve_sequential<T>(h.cview(), cut_cfg, nullptr, {}, ck);
    ASSERT_FALSE(cut.converged);
    EXPECT_EQ(engine.captures(), 3);
  }

  // Resume from the newest snapshot and run to convergence.
  Snapshot<T> snap;
  ASSERT_TRUE(load_last_good(sink, snap));
  EXPECT_EQ(snap.iter, 3);
  SolveCkpt<T> ck;
  ck.resume = &snap;
  auto resumed = core::solve_sequential<T>(h.cview(), cfg, nullptr, {}, ck);
  expect_bitwise_equal(resumed, clean);
}

TYPED_TEST(ResumeTyped, DistributedResumeIsBitwiseEqualToUninterrupted) {
  using T = TypeParam;
  const Index n = 96;
  auto h = test_hamiltonian<T>(n, 52);
  auto cfg = small_cfg();

  // One distributed solve on a 2x2 grid; optional checkpoint/resume wiring.
  const auto run = [&](const core::ChaseConfig& run_cfg, MemorySink* sink,
                       const Snapshot<T>* resume) {
    core::ChaseResult<T> out;
    std::mutex m;
    comm::Team team(4);
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, 2, 2);
      auto map = dist::IndexMap::block(n, 2);
      dist::DistHermitianMatrix<T> hd(grid, map, map);
      hd.fill_from_global(h.cview());
      CheckpointEngine<T> engine(sink, /*interval=*/1);
      SolveCkpt<T> ck;
      if (sink != nullptr) ck.engine = &engine;
      ck.resume = resume;
      auto r = core::solve(hd, run_cfg,
                           static_cast<core::ChaseObserver<T>*>(nullptr),
                           la::ConstMatrixView<T>{}, ck);
      la::Matrix<T> vfull(n, Index(run_cfg.nev));
      dist::gather_rows<T>(grid.col_comm(), map,
                           r.eigenvectors.view().as_const(), vfull.view());
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lock(m);
        out = std::move(r);
        out.eigenvectors = std::move(vfull);
      }
    });
    return out;
  };

  auto clean = run(cfg, nullptr, nullptr);
  ASSERT_TRUE(clean.converged);

  MemorySink sink;
  auto cut_cfg = cfg;
  cut_cfg.max_iterations = 2;
  auto cut = run(cut_cfg, &sink, nullptr);
  ASSERT_FALSE(cut.converged);

  Snapshot<T> snap;
  ASSERT_TRUE(load_last_good(sink, snap));
  EXPECT_EQ(snap.iter, 2);
  auto resumed = run(cfg, nullptr, &snap);
  expect_bitwise_equal(resumed, clean);
}

TYPED_TEST(ResumeTyped, LegacyLmsResumeIsBitwiseEqualToUninterrupted) {
  using T = TypeParam;
  const Index n = 80;
  auto h = test_hamiltonian<T>(n, 53);
  auto cfg = small_cfg();

  const auto run = [&](const core::ChaseConfig& run_cfg, MemorySink* sink,
                       const Snapshot<T>* resume) {
    core::ChaseResult<T> out;
    std::mutex m;
    comm::Team team(2);
    team.run([&](comm::Communicator& world) {
      comm::Grid2d grid(world, 1, 2);
      auto rmap = dist::IndexMap::block(n, 1);
      auto cmap = dist::IndexMap::block(n, 2);
      dist::DistHermitianMatrix<T> hd(grid, rmap, cmap);
      hd.fill_from_global(h.cview());
      CheckpointEngine<T> engine(sink, /*interval=*/1);
      SolveCkpt<T> ck;
      if (sink != nullptr) ck.engine = &engine;
      ck.resume = resume;
      auto r = core::solve_lms(hd, run_cfg,
                               static_cast<core::ChaseObserver<T>*>(nullptr),
                               ck);
      if (world.rank() == 0) {
        std::lock_guard<std::mutex> lock(m);
        out = std::move(r);
      }
    });
    return out;
  };

  auto clean = run(cfg, nullptr, nullptr);
  ASSERT_TRUE(clean.converged);

  MemorySink sink;
  auto cut_cfg = cfg;
  cut_cfg.max_iterations = 2;
  (void)run(cut_cfg, &sink, nullptr);

  Snapshot<T> snap;
  ASSERT_TRUE(load_last_good(sink, snap));
  auto resumed = run(cfg, nullptr, &snap);
  expect_bitwise_equal(resumed, clean);
}

TEST(SequenceResume, ReseedsFromRestoredStreamNotGlobalSeed) {
  using T = double;
  const Index n = 90;
  auto h = test_hamiltonian<T>(n, 54);
  auto cfg = small_cfg();

  comm::Communicator self;
  comm::Grid2d grid(self, 1, 1);
  auto map = dist::IndexMap::block(n, 1);
  dist::DistHermitianMatrix<T> hd(grid, map, map);
  hd.fill_from_global(h.cview());

  // Uninterrupted two-problem sequence (same H twice keeps it simple; the
  // second problem draws from stream 1 regardless).
  core::ChaseSequence<T> seq(cfg);
  auto r1 = seq.solve_next(hd);
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(seq.stream(), 1u);
  auto r2 = seq.solve_next(hd);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(seq.stream(), 2u);

  // Interrupt problem 2 of a fresh sequence mid-solve, checkpointing.
  MemorySink sink;
  core::ChaseSequence<T> cut_seq(cfg);
  (void)cut_seq.solve_next(hd);
  {
    auto cut_cfg = cfg;
    cut_cfg.max_iterations = 2;
    core::ChaseSequence<T> inner(cut_cfg, 10);
    inner.set_stream(cut_seq.stream());
    CheckpointEngine<T> engine(&sink, 1);
    SolveCkpt<T> ck;
    ck.engine = &engine;
    // Mimic the first sequence's warm-start state (same converged guess).
    auto warm = inner.solve_next(hd, nullptr, ck);
    (void)warm;
  }

  // Resume: a *fresh* driver restores the stream from the snapshot.
  Snapshot<T> snap;
  ASSERT_TRUE(load_last_good(sink, snap));
  EXPECT_EQ(snap.rng_stream, 1u);  // problem 2's stream, not the global seed
  core::ChaseSequence<T> resumed_seq(cfg);
  SolveCkpt<T> ck;
  ck.resume = &snap;
  auto resumed = resumed_seq.solve_next(hd, nullptr, ck);
  ASSERT_TRUE(resumed.converged);
  EXPECT_EQ(resumed_seq.stream(), 2u);  // restored 1, advanced past problem 2
  // Bitwise equality with the uninterrupted problem 2 requires the same
  // warm-start guess, which the interrupted driver had; the resumed solve
  // skipped seeding entirely, so its trajectory is the snapshot's. The
  // eigenvalues must agree to convergence tolerance either way.
  for (std::size_t j = 0; j < r2.eigenvalues.size(); ++j) {
    EXPECT_NEAR(resumed.eigenvalues[j], r2.eigenvalues[j], 1e-7);
  }
}

}  // namespace
}  // namespace chase::ckpt
