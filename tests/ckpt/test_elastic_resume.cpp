// Elastic restart driver: rank deaths planted at precise iterations must
// ride through checkpoint/restart — shrink the team, resume from the last
// good snapshot, escalate the degradation ladder when no snapshot exists,
// and bottom out in the sequential driver when teams keep dying.
#include "ckpt/restart.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "common/faultinject.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "tests/testing.hpp"

namespace chase::ckpt {
namespace {

template <typename T>
la::Matrix<T> test_hamiltonian(Index n, std::uint64_t seed) {
  return gen::hermitian_with_spectrum<T>(
      gen::dft_like_spectrum<double>(n, seed), seed);
}

core::ChaseConfig small_cfg() {
  core::ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 6;
  cfg.tol = 1e-9;
  return cfg;
}

TEST(ElasticResume, KillRankAtIterationResumesOnShrunkenTeam) {
  using T = double;
  const Index n = 60;
  auto h = test_hamiltonian<T>(n, 61);
  auto cfg = small_cfg();
  const auto element = [&h](Index i, Index j) { return h(i, j); };

  auto clean = core::solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);
  ASSERT_GE(clean.iterations, 3);  // the staged death must hit a live run

  // World rank 1 dies at its first collective of iteration 3. The iteration-1
  // snapshot is then guaranteed: before rank 1 can reach iteration 3 it must
  // clear iteration 2's row-communicator collectives with rank 0, which rank
  // 0 only enters after completing iteration 1's capture. (A death staged one
  // iteration after a capture would race against it — the capture gather runs
  // in a disjoint column communicator and a poisoned team aborts it, which is
  // exactly the crash-during-store case the double-buffered sink absorbs.)
  fault::Scoped die("rank.die", /*rank=*/1, /*times=*/1, /*skip=*/0,
                    /*iter=*/3);
  RestartOptions opts;
  opts.nranks = 4;
  opts.ckpt_interval = 1;
  opts.max_attempts = 3;
  opts.backoff_ms = 1;
  RestartReport rep;
  auto r = solve_elastic<T>(n, element, cfg, opts, &rep);

  ASSERT_TRUE(r.converged);
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.shrinks, 1);
  EXPECT_EQ(rep.rung, 0);  // snapshot progress: resume rung held
  EXPECT_TRUE(rep.resumed);
  EXPECT_FALSE(rep.sequential_fallback);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_EQ(rep.failures[0].site, "rank.die");
  EXPECT_EQ(rep.failures[0].rank, 1);
  ASSERT_EQ(r.eigenvalues.size(), clean.eigenvalues.size());
  for (std::size_t j = 0; j < clean.eigenvalues.size(); ++j) {
    // Different grid shape after the shrink changes reduction order, so the
    // match is to convergence accuracy, not bitwise.
    EXPECT_NEAR(r.eigenvalues[j], clean.eigenvalues[j], 1e-7) << "pair " << j;
  }
  // Full gathered eigenvectors, not a rank-local slice.
  EXPECT_EQ(r.eigenvectors.rows(), n);
  EXPECT_EQ(r.eigenvectors.cols(), Index(cfg.nev));
}

TEST(ElasticResume, DeathBeforeFirstCheckpointEscalatesToRerandomize) {
  using T = std::complex<double>;
  const Index n = 48;
  auto h = test_hamiltonian<T>(n, 62);
  auto cfg = small_cfg();
  const auto element = [&h](Index i, Index j) { return h(i, j); };

  auto clean = core::solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);

  // Rank 1 dies inside iteration 1 — before the first checkpoint stage ever
  // runs, so the retry has nothing to resume and must re-randomize (rung 1).
  fault::Scoped die("rank.die", /*rank=*/1, /*times=*/1, /*skip=*/0,
                    /*iter=*/1);
  RestartOptions opts;
  opts.nranks = 4;
  opts.ckpt_interval = 1;
  opts.max_attempts = 3;
  opts.backoff_ms = 1;
  RestartReport rep;
  auto r = solve_elastic<T>(n, element, cfg, opts, &rep);

  ASSERT_TRUE(r.converged);
  EXPECT_EQ(rep.shrinks, 1);
  EXPECT_EQ(rep.rung, 1);
  EXPECT_FALSE(rep.resumed);  // no snapshot ever existed
  EXPECT_FALSE(rep.sequential_fallback);
  for (std::size_t j = 0; j < clean.eigenvalues.size(); ++j) {
    EXPECT_NEAR(std::abs(r.eigenvalues[j] - clean.eigenvalues[j]), 0.0, 1e-7);
  }
}

TEST(ElasticResume, DegradationLadderFallsBackToSequential) {
  using T = double;
  const Index n = 48;
  auto h = test_hamiltonian<T>(n, 63);
  auto cfg = small_cfg();
  const auto element = [&h](Index i, Index j) { return h(i, j); };

  auto clean = core::solve_sequential<T>(h.cview(), cfg);
  ASSERT_TRUE(clean.converged);

  // Two staged deaths exhaust the attempt budget: rank 1 dies in iteration 1
  // of attempt 1 (attempt 1 never reaches iteration 2, so rank 2's trigger
  // survives it untouched — lockstep makes that deterministic), then rank 2
  // dies in iteration 2 of attempt 2. The driver bottoms out on the
  // sequential rung. Rank 0 must stay unarmed: the sequential fallback runs
  // with fault thread rank 0 and its collectives degenerate to fault-checked
  // no-op barriers.
  fault::Scoped die1("rank.die", /*rank=*/1, /*times=*/1, /*skip=*/0,
                     /*iter=*/1);
  fault::Scoped die2("rank.die", /*rank=*/2, /*times=*/1, /*skip=*/0,
                     /*iter=*/2);
  RestartOptions opts;
  opts.nranks = 4;
  opts.ckpt_interval = 1;
  opts.max_attempts = 2;
  opts.backoff_ms = 1;
  RestartReport rep;
  auto r = solve_elastic<T>(n, element, cfg, opts, &rep);

  ASSERT_TRUE(r.converged);
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_TRUE(rep.sequential_fallback);
  EXPECT_EQ(rep.rung, 2);
  EXPECT_EQ(rep.shrinks, 2);
  ASSERT_EQ(rep.failures.size(), 2u);
  EXPECT_EQ(rep.failures[0].site, "rank.die");
  EXPECT_EQ(rep.failures[0].rank, 1);
  EXPECT_EQ(rep.failures[1].site, "rank.die");
  EXPECT_EQ(rep.failures[1].rank, 2);
  // Attempt 2 checkpointed iteration 1 before dying, so the sequential rung
  // resumed rather than starting over.
  EXPECT_TRUE(rep.resumed);
  for (std::size_t j = 0; j < clean.eigenvalues.size(); ++j) {
    EXPECT_NEAR(r.eigenvalues[j], clean.eigenvalues[j], 1e-7);
  }
}

TEST(FaultSites, IterationQualifierGatesFiring) {
  fault::Scoped site("test.site", /*rank=*/-1, /*times=*/-1, /*skip=*/0,
                     /*iter=*/5);
  fault::set_iteration(4);
  EXPECT_FALSE(fault::fired("test.site"));
  fault::set_iteration(5);
  EXPECT_TRUE(fault::fired("test.site"));
  EXPECT_TRUE(fault::fired("test.site"));  // unlimited budget
  fault::set_iteration(6);
  EXPECT_FALSE(fault::fired("test.site"));
  fault::set_iteration(0);

  const std::string report = fault::dump_sites();
  EXPECT_NE(report.find("test.site"), std::string::npos);
  EXPECT_NE(report.find("@iter=5"), std::string::npos);
  EXPECT_NE(report.find("total=2"), std::string::npos);
  EXPECT_EQ(fault::fire_count("test.site"), 2);
}

}  // namespace
}  // namespace chase::ckpt
