// The Algorithm 4 recovery ladder driven by the potrf.breakdown fault site:
// escalation is deterministic, observable in QrReport and in perf::Tracker
// counters, and ends at Householder QR, which cannot break.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/faultinject.hpp"
#include "core/sequential.hpp"
#include "dist/multivector.hpp"
#include "gen/spectrum.hpp"
#include "la/norms.hpp"
#include "qr/qr_selector.hpp"
#include "tests/testing.hpp"

namespace chase::qr {
namespace {

using chase::testing::random_matrix;
using dist::IndexMap;
using dist::scatter_rows;

TEST(QrRecovery, SingleBreakdownEscalatesToShifted) {
  // One injected POTRF failure: CholeskyQR2 breaks, the shifted rung factors
  // the same (now shifted) Gram matrix and succeeds — no HHQR needed.
  using T = double;
  const Index m = 80, n = 6;
  auto x = random_matrix<T>(m, n, 31);
  fault::Scoped armed("potrf.breakdown", /*rank=*/-1, /*times=*/1);
  std::vector<perf::Tracker> trackers(1);
  comm::Team team(1);
  team.run(
      [&](comm::Communicator& comm) {
        auto map = IndexMap::block(m, 1);
        auto report = caqr_1d(x.view(), map, comm, /*est_cond=*/1e3);
        EXPECT_EQ(report.selected, QrVariant::kCholQr2);
        EXPECT_EQ(report.used, QrVariant::kShiftedCholQr2);
        EXPECT_FALSE(report.hhqr_fallback);
        EXPECT_EQ(report.potrf_failures, 1);
      },
      &trackers);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
  EXPECT_DOUBLE_EQ(trackers[0].counter("qr.potrf_breakdown"), 1.0);
  EXPECT_DOUBLE_EQ(trackers[0].counter("qr.hhqr_fallback"), 0.0);
  EXPECT_DOUBLE_EQ(trackers[0].counter("qr.variant.sCholQR2"), 1.0);
}

TEST(QrRecovery, PersistentBreakdownFallsBackToHouseholder) {
  // times=-1: every POTRF attempt fails, walking the whole ladder
  // CholQR2 -> shifted CholQR2 -> HHQR.
  using T = std::complex<double>;
  const Index m = 80, n = 6;
  auto x = random_matrix<T>(m, n, 32);
  fault::Scoped armed("potrf.breakdown", /*rank=*/-1, /*times=*/-1);
  std::vector<perf::Tracker> trackers(1);
  comm::Team team(1);
  team.run(
      [&](comm::Communicator& comm) {
        auto map = IndexMap::block(m, 1);
        auto report = caqr_1d(x.view(), map, comm, /*est_cond=*/1e3);
        EXPECT_EQ(report.selected, QrVariant::kCholQr2);
        EXPECT_EQ(report.used, QrVariant::kHouseholder);
        EXPECT_TRUE(report.hhqr_fallback);
        EXPECT_EQ(report.potrf_failures, 2);
      },
      &trackers);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
  EXPECT_DOUBLE_EQ(trackers[0].counter("qr.potrf_breakdown"), 2.0);
  EXPECT_DOUBLE_EQ(trackers[0].counter("qr.hhqr_fallback"), 1.0);
  EXPECT_DOUBLE_EQ(trackers[0].counter("qr.variant.HHQR"), 1.0);
}

TEST(QrRecovery, DistributedLadderStaysOrthonormal) {
  // rank=-1 arming fires identically on every rank, so the 4-rank ladder
  // walks the same rungs everywhere and the distributed HHQR result is a
  // global orthonormal basis.
  using T = double;
  const Index m = 96, n = 5;
  const int p = 4;
  auto x = random_matrix<T>(m, n, 33);
  fault::Scoped armed("potrf.breakdown", /*rank=*/-1, /*times=*/-1);
  std::vector<perf::Tracker> trackers(4);
  comm::Team team(p);
  team.run(
      [&](comm::Communicator& comm) {
        auto map = IndexMap::block(m, p);
        Matrix<T> local(map.local_size(comm.rank()), n);
        scatter_rows(map, comm.rank(), x.cview(), local.view());
        auto report = caqr_1d(local.view(), map, comm, /*est_cond=*/1e3);
        EXPECT_TRUE(report.hhqr_fallback);
        EXPECT_EQ(report.used, QrVariant::kHouseholder);
        Matrix<T> full(m, n);
        dist::gather_rows(comm, map, local.cview(), full.view());
        EXPECT_LE(la::orthogonality_error(full.cview()), 1e-12);
      },
      &trackers);
  for (int r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(trackers[std::size_t(r)].counter("qr.hhqr_fallback"), 1.0)
        << "rank " << r;
  }
}

TEST(QrRecovery, SolverCompletesViaHhqrFallbackUnderPersistentBreakdown) {
  // The acceptance scenario: with POTRF permanently broken the full solver
  // must still converge (via HHQR every iteration) to residual-accurate
  // eigenpairs, and the fallback must be visible in the tracker counters.
  using T = double;
  const Index n = 100;
  auto h = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, -2.0, 6.0), 35);
  core::ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 6;
  cfg.tol = 1e-9;

  fault::Scoped armed("potrf.breakdown", /*rank=*/-1, /*times=*/-1);
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);
  auto r = core::solve_sequential<T>(h.cview(), cfg);
  perf::set_thread_tracker(nullptr);

  ASSERT_TRUE(r.converged);
  for (const auto& s : r.stats) {
    EXPECT_TRUE(s.qr_fallback);
    EXPECT_EQ(s.qr_used, QrVariant::kHouseholder);
    // 1 breakdown when the estimate already picked the shifted rung, 2 when
    // the ladder started from CholQR2.
    EXPECT_GE(s.qr_potrf_failures, 1);
  }
  EXPECT_DOUBLE_EQ(tracker.counter("qr.hhqr_fallback"), double(r.iterations));
  EXPECT_DOUBLE_EQ(tracker.counter("qr.variant.HHQR"), double(r.iterations));
  EXPECT_GE(tracker.counter("qr.potrf_breakdown"), 1.0);

  // Residuals: ||H v - lambda v|| <= 10*tol * ||H||_est, the standard bound
  // the clean solver is held to.
  la::Matrix<T> hv(n, cfg.nev);
  la::gemm(T(1), h.cview(), r.eigenvectors.cview(), T(0), hv.view());
  const double scale =
      std::max(std::abs(r.bounds.b_sup), std::abs(r.bounds.mu_1));
  for (Index j = 0; j < cfg.nev; ++j) {
    double acc = 0;
    for (Index i = 0; i < n; ++i) {
      const T d =
          hv(i, j) - T(r.eigenvalues[std::size_t(j)]) * r.eigenvectors(i, j);
      acc += real_part(conjugate(d) * d);
    }
    EXPECT_LE(std::sqrt(acc) / scale, cfg.tol * 10) << "pair " << j;
  }
  EXPECT_LE(la::orthogonality_error(r.eigenvectors.cview()), 1e-10);
}

}  // namespace
}  // namespace chase::qr
