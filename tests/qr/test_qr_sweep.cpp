// Parameterized property sweep over the full QR family: every variant must
// preserve the column span; orthogonality must meet the variant's documented
// stability envelope across condition numbers, shapes and rank counts.
#include <gtest/gtest.h>

#include <complex>
#include <tuple>

#include "dist/multivector.hpp"
#include "la/norms.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "qr/cholqr.hpp"
#include "qr/hhqr_dist.hpp"
#include "qr/tsqr.hpp"
#include "tests/testing.hpp"

namespace chase::qr {
namespace {

using chase::testing::random_matrix;
using dist::IndexMap;
using la::Index;

enum class Variant { kCholQr1, kCholQr2, kShifted, kHhqr, kTsqr };

const char* name_of(Variant v) {
  switch (v) {
    case Variant::kCholQr1:
      return "CholQR1";
    case Variant::kCholQr2:
      return "CholQR2";
    case Variant::kShifted:
      return "sCholQR2";
    case Variant::kHhqr:
      return "HHQR";
    case Variant::kTsqr:
    default:
      return "TSQR";
  }
}

/// Largest log10(kappa) the variant is documented to handle.
double kappa_envelope(Variant v) {
  switch (v) {
    case Variant::kCholQr1:
      return 2.0;   // only well-conditioned blocks
    case Variant::kCholQr2:
      return 7.0;   // up to ~u^{-1/2}
    case Variant::kShifted:
    case Variant::kHhqr:
    case Variant::kTsqr:
      return 11.0;  // up to ~u^{-1}
  }
  return 0;
}

using Param = std::tuple<int /*Variant*/, int /*log10 kappa*/, int /*ranks*/>;

class QrSweep : public ::testing::TestWithParam<Param> {};

TEST_P(QrSweep, OrthogonalityAndSpanWithinEnvelope) {
  using T = std::complex<double>;
  const auto [vi, logk, p] = GetParam();
  const Variant variant = Variant(vi);
  if (double(logk) > kappa_envelope(variant)) {
    GTEST_SKIP() << name_of(variant) << " not rated for kappa=1e" << logk;
  }

  const Index m = 120, n = 10;
  // Conditioned input: geometric singular values 1 .. 10^-logk.
  auto q1 = random_matrix<T>(m, n, 31);
  la::householder_orthonormalize(q1.view());
  auto q2 = random_matrix<T>(n, n, 32);
  la::householder_orthonormalize(q2.view());
  for (Index j = 0; j < n; ++j) {
    la::scal(m, T(std::pow(10.0, -double(logk) * double(j) / double(n - 1))),
             q1.col(j));
  }
  la::Matrix<T> x(m, n);
  la::gemm(T(1), la::Op::kNoTrans, q1.cview(), la::Op::kConjTrans, q2.cview(),
           T(0), x.view());
  auto x0 = la::clone(x.cview());

  comm::Team team(p);
  team.run([&, vi = vi](comm::Communicator& comm) {
    const Variant v = Variant(vi);
    auto map = IndexMap::block(m, p);
    la::Matrix<T> local(map.local_size(comm.rank()), n);
    dist::scatter_rows(map, comm.rank(), x.cview(), local.view());
    const comm::Communicator* reduce = p > 1 ? &comm : nullptr;
    int info = 0;
    switch (v) {
      case Variant::kCholQr1:
        info = cholqr(local.view(), reduce, 1);
        break;
      case Variant::kCholQr2:
        info = cholqr(local.view(), reduce, 2);
        break;
      case Variant::kShifted:
        info = shifted_cholqr_step(local.view(), reduce, m);
        if (info == 0) info = cholqr(local.view(), reduce, 2);
        break;
      case Variant::kHhqr:
        hhqr_dist(local.view(), map, comm);
        break;
      case Variant::kTsqr:
        tsqr(local.view(), comm);
        break;
    }
    ASSERT_EQ(info, 0);

    la::Matrix<T> full(m, n);
    dist::gather_rows(comm, map, local.cview(), full.view());
    if (comm.rank() == 0) {
      EXPECT_LE(la::orthogonality_error(full.cview()), 1e-10);
      // Span preservation: || X0 - Q Q^H X0 || / ||X0|| small relative to
      // what the conditioning allows.
      la::Matrix<T> coeff(n, n), rec(m, n);
      la::gemm(T(1), la::Op::kConjTrans, full.cview(), la::Op::kNoTrans,
               x0.cview(), T(0), coeff.view());
      la::gemm(T(1), full.cview(), coeff.cview(), T(0), rec.view());
      double num = 0;
      for (Index j = 0; j < n; ++j) {
        for (Index i = 0; i < m; ++i) {
          num += std::norm(rec(i, j) - x0(i, j));
        }
      }
      EXPECT_LE(std::sqrt(num) / la::frobenius_norm(x0.cview()),
                1e-12 * std::pow(10.0, double(logk)) + 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, QrSweep,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1, 4, 7, 10),
                       ::testing::Values(1, 3)),
    [](const auto& info) {
      return std::string(name_of(Variant(std::get<0>(info.param)))) +
             "_k1e" + std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace chase::qr
