#include "qr/condest.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace chase::qr {
namespace {

TEST(ChebyshevGrowth, InsideIntervalIsOne) {
  EXPECT_DOUBLE_EQ(chebyshev_growth(0.0), 1.0);
  EXPECT_DOUBLE_EQ(chebyshev_growth(1.0), 1.0);
  EXPECT_DOUBLE_EQ(chebyshev_growth(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(chebyshev_growth(0.5), 1.0);
}

TEST(ChebyshevGrowth, OutsideIntervalKnownValues) {
  // |t| + sqrt(t^2 - 1): for t = -2 this is 2 + sqrt(3).
  EXPECT_NEAR(chebyshev_growth(-2.0), 2.0 + std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(chebyshev_growth(2.0), 2.0 + std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(chebyshev_growth(-1.5), 1.5 + std::sqrt(1.25), 1e-14);
}

TEST(ChebyshevGrowth, MonotoneInDistanceFromInterval) {
  double prev = chebyshev_growth(-1.0);
  for (double t = -1.2; t > -5.0; t -= 0.4) {
    const double g = chebyshev_growth(t);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(CondEst, UniformDegreesReduceToSingleRatio) {
  // All degrees equal d: cond = rho(t_first_unconverged)^d.
  std::vector<double> ritz = {-3.0, -2.0, -1.5, -0.5};
  std::vector<int> degs = {20, 20, 20, 20};
  const double c = 0.0, e = 1.0;
  const double est = estimate_filtered_cond(ritz, c, e, degs, 0);
  EXPECT_NEAR(est, std::pow(chebyshev_growth(-3.0), 20), est * 1e-12);
}

TEST(CondEst, LockingMovesTheReferenceRitzValue) {
  std::vector<double> ritz = {-3.0, -2.0, -1.5, -0.5};
  std::vector<int> degs = {20, 20, 20, 20};
  const double none = estimate_filtered_cond(ritz, 0.0, 1.0, degs, 0);
  const double one = estimate_filtered_cond(ritz, 0.0, 1.0, degs, 1);
  // After locking the most extremal vector the estimate must drop: the first
  // unconverged Ritz value is closer to the damped interval.
  EXPECT_LT(one, none);
  EXPECT_NEAR(one, std::pow(chebyshev_growth(-2.0), 20), one * 1e-12);
}

TEST(CondEst, DegreeOptimizationTermEngages) {
  // Mixed degrees: the d_M - d excess multiplies the extremal growth factor.
  std::vector<double> ritz = {-3.0, -2.0, -0.5};
  std::vector<int> degs = {10, 10, 14};
  const double est = estimate_filtered_cond(ritz, 0.0, 1.0, degs, 0);
  const double rho = chebyshev_growth(-3.0);
  EXPECT_NEAR(est, std::pow(rho, 10) * std::pow(rho, 4), est * 1e-12);
}

TEST(CondEst, InsideIntervalGivesConditionOne) {
  // All remaining Ritz values inside the damped interval: no amplification
  // spread, cond estimate 1 (the last-iterations regime of Figure 1).
  std::vector<double> ritz = {-0.9, -0.5, 0.3};
  std::vector<int> degs = {8, 8, 8};
  EXPECT_DOUBLE_EQ(estimate_filtered_cond(ritz, 0.0, 1.0, degs, 0), 1.0);
}

TEST(CondEst, HugeDegreesSaturateInsteadOfOverflow) {
  std::vector<double> ritz = {-50.0, -0.5};
  std::vector<int> degs = {10000, 10000};
  const double est = estimate_filtered_cond(ritz, 0.0, 1.0, degs, 0);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_EQ(est, std::numeric_limits<double>::max());
}

TEST(CondEst, PreconditionsChecked) {
  std::vector<double> ritz = {-2.0, -1.0};
  std::vector<int> degs = {10, 10};
  EXPECT_THROW(estimate_filtered_cond(ritz, 0.0, -1.0, degs, 0), Error);
  EXPECT_THROW(estimate_filtered_cond(ritz, 0.0, 1.0, degs, 2), Error);
  std::vector<int> short_degs = {10};
  EXPECT_THROW(estimate_filtered_cond(ritz, 0.0, 1.0, short_degs, 0), Error);
}

}  // namespace
}  // namespace chase::qr
