#include "qr/cholqr.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "dist/multivector.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "qr/hhqr_dist.hpp"
#include "qr/qr_selector.hpp"
#include "tests/testing.hpp"

namespace chase::qr {
namespace {

using chase::testing::random_matrix;
using chase::testing::tol;
using dist::IndexMap;
using dist::scatter_rows;

/// Tall matrix with prescribed condition number (singular values decay
/// geometrically from 1 to 1/kappa).
template <typename T>
Matrix<T> with_condition(Index m, Index n, RealType<T> kappa,
                         std::uint64_t seed) {
  using R = RealType<T>;
  auto q1 = random_matrix<T>(m, n, seed);
  la::householder_orthonormalize(q1.view());
  auto q2 = random_matrix<T>(n, n, seed + 1);
  la::householder_orthonormalize(q2.view());
  for (Index j = 0; j < n; ++j) {
    const R sigma = std::pow(kappa, -R(j) / R(n - 1));
    la::scal(m, T(sigma), q1.col(j));
  }
  Matrix<T> x(m, n);
  la::gemm(T(1), la::Op::kNoTrans, q1.cview(), la::Op::kConjTrans, q2.cview(),
           T(0), x.view());
  return x;
}

/// || X0 - Q (Q^H X0) ||_F / ||X0||_F: the span must be preserved by any QR.
template <typename T>
RealType<T> span_loss(ConstMatrixView<T> q, ConstMatrixView<T> x0) {
  Matrix<T> coeff(q.cols(), x0.cols());
  la::gemm(T(1), la::Op::kConjTrans, q, la::Op::kNoTrans, x0, T(0),
           coeff.view());
  Matrix<T> rec(x0.rows(), x0.cols());
  la::gemm(T(1), q, coeff.cview(), T(0), rec.view());
  RealType<T> num = 0;
  for (Index j = 0; j < x0.cols(); ++j) {
    for (Index i = 0; i < x0.rows(); ++i) {
      num += std::norm(std::complex<double>(
          double(real_part(T(rec(i, j) - x0(i, j)))),
          double(imag_part(T(rec(i, j) - x0(i, j))))));
    }
  }
  return std::sqrt(num) / la::frobenius_norm(x0);
}

template <typename T>
class CholQrTyped : public ::testing::Test {};
TYPED_TEST_SUITE(CholQrTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(CholQrTyped, CholQr1WellConditioned) {
  using T = TypeParam;
  auto x = with_condition<T>(120, 12, RealType<T>(5), 1);
  auto x0 = la::clone(x.cview());
  ASSERT_EQ(cholqr(x.view(), nullptr, 1), 0);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
  EXPECT_LE(span_loss(x.cview(), x0.cview()), 1e-10);
}

TYPED_TEST(CholQrTyped, CholQr2RecoversModerateConditioning) {
  using T = TypeParam;
  auto x = with_condition<T>(200, 10, RealType<T>(1e6), 2);
  auto x0 = la::clone(x.cview());
  ASSERT_EQ(cholqr(x.view(), nullptr, 2), 0);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-13);
  EXPECT_LE(span_loss(x.cview(), x0.cview()), 1e-8);
}

TYPED_TEST(CholQrTyped, CholQr1LosesOrthogonalityWhereCholQr2DoesNot) {
  // The Section 3.2 motivation: one pass degrades like kappa^2 * u, the
  // second pass repairs it.
  using T = TypeParam;
  auto x1 = with_condition<T>(200, 10, RealType<T>(1e6), 3);
  auto x2 = la::clone(x1.cview());
  ASSERT_EQ(cholqr(x1.view(), nullptr, 1), 0);
  ASSERT_EQ(cholqr(x2.view(), nullptr, 2), 0);
  const auto err1 = la::orthogonality_error(x1.cview());
  const auto err2 = la::orthogonality_error(x2.cview());
  EXPECT_GT(err1, 100 * err2);
  EXPECT_GT(err1, 1e-8);  // visibly degraded
}

TYPED_TEST(CholQrTyped, CholQrFailsBeyondSqrtU) {
  // kappa ~ 1e9 > u^{-1/2}: the Gram matrix is numerically indefinite.
  using T = TypeParam;
  auto x = with_condition<T>(300, 8, RealType<T>(1e9), 4);
  EXPECT_NE(cholqr(x.view(), nullptr, 1), 0);
}

TYPED_TEST(CholQrTyped, ShiftedCholQr2HandlesIllConditioned) {
  using T = TypeParam;
  auto x = with_condition<T>(300, 8, RealType<T>(1e9), 5);
  auto x0 = la::clone(x.cview());
  ASSERT_EQ(shifted_cholqr_step(x.view(), nullptr, 300), 0);
  ASSERT_EQ(cholqr(x.view(), nullptr, 2), 0);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
  EXPECT_LE(span_loss(x.cview(), x0.cview()), 1e-5);
}

TYPED_TEST(CholQrTyped, DistributedMatchesSequential) {
  using T = TypeParam;
  const Index m = 96, n = 7;
  for (int p : {2, 3, 4}) {
    auto x = with_condition<T>(m, n, RealType<T>(100), 6);
    auto xs = la::clone(x.cview());
    ASSERT_EQ(cholqr(xs.view(), nullptr, 2), 0);

    comm::Team team(p);
    team.run([&](comm::Communicator& comm) {
      auto map = IndexMap::block(m, p);
      Matrix<T> local(map.local_size(comm.rank()), n);
      scatter_rows(map, comm.rank(), x.cview(), local.view());
      ASSERT_EQ(cholqr(local.view(), &comm, 2), 0);
      // The distributed result must match the sequential Q on my rows
      // (CholeskyQR is deterministic: Q = X chol(X^H X)^{-1}).
      Matrix<T> expect(map.local_size(comm.rank()), n);
      scatter_rows(map, comm.rank(), xs.cview(), expect.view());
      EXPECT_LE(la::max_abs_diff(local.cview(), expect.cview()), 1e-10);
    });
  }
}

TYPED_TEST(CholQrTyped, HhqrDistOrthonormalizesAndMatchesSpanSequential) {
  using T = TypeParam;
  const Index m = 64, n = 6;
  for (int p : {1, 2, 4}) {
    auto x = with_condition<T>(m, n, RealType<T>(1e8), 7);
    auto x0 = la::clone(x.cview());
    comm::Team team(p);
    team.run([&](comm::Communicator& comm) {
      auto map = IndexMap::block(m, p);
      Matrix<T> local(map.local_size(comm.rank()), n);
      scatter_rows(map, comm.rank(), x.cview(), local.view());
      hhqr_dist(local.view(), map, comm);
      // Reassemble the full Q on every rank and check its properties.
      Matrix<T> full(m, n);
      dist::gather_rows(comm, map, local.cview(), full.view());
      EXPECT_LE(la::orthogonality_error(full.cview()), 1e-12);
      EXPECT_LE(span_loss(full.cview(), x0.cview()), 1e-6);
    });
  }
}

TYPED_TEST(CholQrTyped, HhqrDistMatchesSequentialHouseholder) {
  // Same larfg conventions sequentially and distributed => identical Q.
  using T = TypeParam;
  const Index m = 40, n = 5;
  auto x = random_matrix<T>(m, n, 8);
  auto xs = la::clone(x.cview());
  la::householder_orthonormalize(xs.view());

  const int p = 4;
  comm::Team team(p);
  team.run([&](comm::Communicator& comm) {
    auto map = IndexMap::block(m, p);
    Matrix<T> local(map.local_size(comm.rank()), n);
    scatter_rows(map, comm.rank(), x.cview(), local.view());
    hhqr_dist(local.view(), map, comm);
    Matrix<T> expect(map.local_size(comm.rank()), n);
    scatter_rows(map, comm.rank(), xs.cview(), expect.view());
    EXPECT_LE(la::max_abs_diff(local.cview(), expect.cview()), 1e-11);
  });
}

TYPED_TEST(CholQrTyped, HhqrDistBlockCyclicMap) {
  using T = TypeParam;
  const Index m = 50, n = 4;
  auto x = random_matrix<T>(m, n, 9);
  const int p = 3;
  comm::Team team(p);
  team.run([&](comm::Communicator& comm) {
    auto map = IndexMap::block_cyclic(m, p, 4);
    Matrix<T> local(map.local_size(comm.rank()), n);
    scatter_rows(map, comm.rank(), x.cview(), local.view());
    hhqr_dist(local.view(), map, comm);
    Matrix<T> full(m, n);
    dist::gather_rows(comm, map, local.cview(), full.view());
    EXPECT_LE(la::orthogonality_error(full.cview()), 1e-12);
  });
}

TEST(QrSelector, PicksVariantByEstimate) {
  using T = double;
  const Index m = 80, n = 6;
  struct Case {
    double est;
    QrVariant expect;
  };
  for (const Case& c : {Case{5.0, QrVariant::kCholQr1},
                        Case{1e4, QrVariant::kCholQr2},
                        Case{1e10, QrVariant::kShiftedCholQr2}}) {
    auto x = with_condition<T>(m, n, 10.0, 10);
    comm::Team team(1);
    team.run([&](comm::Communicator& comm) {
      auto map = IndexMap::block(m, 1);
      auto report = caqr_1d(x.view(), map, comm, c.est);
      EXPECT_EQ(report.selected, c.expect);
      EXPECT_FALSE(report.hhqr_fallback);
    });
    EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
  }
}

TEST(QrSelector, ForceHouseholder) {
  using T = double;
  auto x = with_condition<T>(60, 5, 100.0, 11);
  comm::Team team(1);
  team.run([&](comm::Communicator& comm) {
    auto map = IndexMap::block(60, 1);
    QrOptions opts;
    opts.force_householder = true;
    auto report = caqr_1d(x.view(), map, comm, 1.0, opts);
    EXPECT_EQ(report.selected, QrVariant::kHouseholder);
  });
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-13);
}

TEST(QrSelector, EscalatesOnRankDeficiency) {
  // Exactly repeated columns defeat plain CholeskyQR; the Algorithm 4
  // escalation ladder must engage (shifted CholeskyQR2, then Householder if
  // even the shift cannot save the factorization — which of the two rungs
  // lands depends on the sign of the O(u) perturbation of the zero Gram
  // eigenvalue) and still return an orthonormal basis.
  using T = double;
  const Index m = 40, n = 4;
  auto x = random_matrix<T>(m, n, 12);
  for (Index i = 0; i < m; ++i) x(i, 2) = x(i, 1);  // rank deficient
  comm::Team team(1);
  team.run([&](comm::Communicator& comm) {
    auto map = IndexMap::block(m, 1);
    // Mis-estimated as moderately conditioned: CholeskyQR2 will fail POTRF.
    auto report = caqr_1d(x.view(), map, comm, 1e4);
    EXPECT_EQ(report.selected, QrVariant::kCholQr2);
    EXPECT_GE(report.potrf_failures, 1);
    EXPECT_TRUE(report.used == QrVariant::kShiftedCholQr2 ||
                report.used == QrVariant::kHouseholder)
        << "used=" << qr_variant_name(report.used);
  });
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
}

TEST(QrSelector, CommunicationCountsCholQrVsHhqr) {
  // The communication-avoiding claim, checked on the event stream: CholeskyQR2
  // needs 2 allreduces total; HHQR needs O(n) per-column rounds.
  using T = double;
  const Index m = 64, n = 8;
  const int p = 4;
  auto x = random_matrix<T>(m, n, 13);

  auto count_allreduce = [&](bool hh) {
    std::vector<perf::Tracker> trackers(static_cast<std::size_t>(p));
    comm::Team team(p);
    team.run(
        [&](comm::Communicator& comm) {
          auto map = IndexMap::block(m, p);
          Matrix<T> local(map.local_size(comm.rank()), n);
          scatter_rows(map, comm.rank(), x.cview(), local.view());
          QrOptions opts;
          opts.force_householder = hh;
          caqr_1d(local.view(), map, comm, 1e3, opts);
        },
        &trackers);
    std::size_t count = 0;
    for (const auto& ev : trackers[0].collectives()) {
      if (ev.kind == perf::CollKind::kAllReduce) ++count;
    }
    return count;
  };

  EXPECT_EQ(count_allreduce(false), 2u);         // CholeskyQR2
  EXPECT_GE(count_allreduce(true), std::size_t(2 * n));  // HHQR
}

}  // namespace
}  // namespace chase::qr
