#include "qr/tsqr.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "dist/multivector.hpp"
#include "la/norms.hpp"
#include "la/svd.hpp"
#include "qr/cholqr.hpp"
#include "tests/testing.hpp"

namespace chase::qr {
namespace {

using chase::testing::random_matrix;
using dist::IndexMap;
using dist::scatter_rows;
using la::Index;

/// Tall matrix with geometric singular-value decay down to 1/kappa.
template <typename T>
la::Matrix<T> conditioned(Index m, Index n, double kappa, std::uint64_t seed) {
  using R = RealType<T>;
  auto q1 = random_matrix<T>(m, n, seed);
  la::householder_orthonormalize(q1.view());
  auto q2 = random_matrix<T>(n, n, seed + 1);
  la::householder_orthonormalize(q2.view());
  for (Index j = 0; j < n; ++j) {
    la::scal(m, T(R(std::pow(kappa, -double(j) / double(n - 1)))), q1.col(j));
  }
  la::Matrix<T> x(m, n);
  la::gemm(T(1), la::Op::kNoTrans, q1.cview(), la::Op::kConjTrans, q2.cview(),
           T(0), x.view());
  return x;
}

template <typename T>
class TsqrTyped : public ::testing::Test {};
TYPED_TEST_SUITE(TsqrTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(TsqrTyped, SequentialOrthonormalAndReconstructs) {
  using T = TypeParam;
  const Index m = 90, n = 12;
  auto x = random_matrix<T>(m, n, 1);
  auto x0 = la::clone(x.cview());
  comm::Communicator self;
  la::Matrix<T> r;
  tsqr(x.view(), self, &r);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-13);
  la::Matrix<T> rec(m, n);
  la::gemm(T(1), x.cview(), r.cview(), T(0), rec.view());
  EXPECT_LE(la::max_abs_diff(rec.cview(), x0.cview()), 1e-12);
}

TYPED_TEST(TsqrTyped, DistributedMatchesPropertiesAcrossRanks) {
  using T = TypeParam;
  const Index m = 96, n = 8;
  for (int p : {2, 3, 4}) {
    auto x = random_matrix<T>(m, n, 2);
    comm::Team team(p);
    team.run([&](comm::Communicator& comm) {
      auto map = IndexMap::block(m, p);
      la::Matrix<T> local(map.local_size(comm.rank()), n);
      scatter_rows(map, comm.rank(), x.cview(), local.view());
      la::Matrix<T> r;
      tsqr(local.view(), comm, &r);
      // R must be identical on all ranks and upper triangular.
      for (Index j = 0; j < n; ++j) {
        for (Index i = j + 1; i < n; ++i) {
          EXPECT_LE(abs_value(r(i, j)), 1e-13);
        }
      }
      la::Matrix<T> full(m, n);
      dist::gather_rows(comm, map, local.cview(), full.view());
      EXPECT_LE(la::orthogonality_error(full.cview()), 1e-13) << "p=" << p;
      // Q R reconstructs the input.
      la::Matrix<T> rec(m, n);
      la::gemm(T(1), full.cview(), r.cview(), T(0), rec.view());
      EXPECT_LE(la::max_abs_diff(rec.cview(), x.cview()), 1e-12) << "p=" << p;
    });
  }
}

TYPED_TEST(TsqrTyped, StableWhereCholQrBreaks) {
  // kappa ~ 1e12 > u^{-1/2}: plain CholeskyQR must fail its POTRF while
  // TSQR still returns an orthonormal basis — the stability/performance
  // trade-off of Section 3.2.
  using T = TypeParam;
  const Index m = 240, n = 8;
  auto x = conditioned<T>(m, n, 1e12, 3);
  auto x_chol = la::clone(x.cview());
  EXPECT_NE(cholqr(x_chol.view(), nullptr, 1), 0);

  comm::Communicator self;
  tsqr(x.view(), self);
  EXPECT_LE(la::orthogonality_error(x.cview()), 1e-12);
}

TYPED_TEST(TsqrTyped, RaggedBlockDistribution) {
  // Uneven local row counts, including a rank owning fewer rows than
  // columns.
  using T = TypeParam;
  const Index m = 26, n = 6;
  const int p = 4;  // blocks of 7,7,7,5
  auto x = random_matrix<T>(m, n, 4);
  comm::Team team(p);
  team.run([&](comm::Communicator& comm) {
    auto map = IndexMap::block(m, p);
    la::Matrix<T> local(map.local_size(comm.rank()), n);
    scatter_rows(map, comm.rank(), x.cview(), local.view());
    tsqr(local.view(), comm);
    la::Matrix<T> full(m, n);
    dist::gather_rows(comm, map, local.cview(), full.view());
    EXPECT_LE(la::orthogonality_error(full.cview()), 1e-13);
  });
}

TEST(Tsqr, CommunicationVolumeMatchesCholQrGram) {
  // The Section 3.2 comparison: TSQR allgathers one n x n R block per rank,
  // while CholQR allreduces only the packed upper triangle of the Hermitian
  // Gram matrix — n(n+1)/2 scalars. Event-byte conventions differ by
  // collective — an allreduce event records the per-rank buffer, an
  // allgather event the full gathered payload (p * n * n).
  using T = double;
  const Index m = 64, n = 8;
  const int p = 4;
  auto x = random_matrix<T>(m, n, 5);

  auto volume = [&](bool use_tsqr) {
    std::vector<perf::Tracker> trackers(static_cast<std::size_t>(p));
    comm::Team team(p);
    team.run(
        [&](comm::Communicator& comm) {
          auto map = IndexMap::block(m, p);
          la::Matrix<T> local(map.local_size(comm.rank()), n);
          scatter_rows(map, comm.rank(), x.cview(), local.view());
          if (use_tsqr) {
            tsqr(local.view(), comm);
          } else {
            cholqr(local.view(), &comm, 1);
          }
        },
        &trackers);
    std::size_t bytes = 0;
    for (const auto& ev : trackers[0].collectives()) bytes += ev.bytes;
    return bytes;
  };

  EXPECT_EQ(volume(true), std::size_t(p) * std::size_t(n) * std::size_t(n) *
                              sizeof(T));
  EXPECT_EQ(volume(false),
            std::size_t(n) * std::size_t(n + 1) / 2 * sizeof(T));
}

}  // namespace
}  // namespace chase::qr
