// The shared warmup+repeat harness and the CHASE_TUNE_* option knobs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "tune/measure.hpp"
#include "tune/tuner.hpp"

namespace chase::tune {
namespace {

TEST(Measure, RunsWarmupPlusItersAndCountsThem) {
  int calls = 0;
  const Measurement m = measure(2, 3, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(m.iters, 3);
  EXPECT_GE(m.mean, m.best);
  EXPECT_NEAR(m.total, m.mean * 3, 1e-12);
}

TEST(Measure, ClampsDegenerateCounts) {
  int calls = 0;
  const Measurement m = measure(-3, 0, [&] { ++calls; });
  EXPECT_EQ(calls, 1);  // no warmup, one timed run
  EXPECT_EQ(m.iters, 1);
  EXPECT_GE(m.best, 0.0);
}

TEST(Measure, BestIsMinimumOverRepeats) {
  // A workload whose first timed run is much slower than the rest: best
  // must track the fast runs, mean must sit in between.
  int run = 0;
  const Measurement m = measure(0, 4, [&] {
    volatile double sink = 0;
    const int work = run++ == 0 ? 2'000'000 : 2'000;
    for (int i = 0; i < work; ++i) sink = sink + i;
  });
  EXPECT_LT(m.best, m.mean);
}

TEST(Measure, RateIsWorkOverBest) {
  const double rate = measured_rate(1e6, 0, 3, [] {
    volatile double sink = 0;
    for (int i = 0; i < 10'000; ++i) sink = sink + i;
  });
  EXPECT_GT(rate, 0.0);
}

class TuneEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CHASE_TUNE_REPS");
    ::unsetenv("CHASE_TUNE_WARMUP");
    ::unsetenv("CHASE_TUNE_RANKS");
    ::unsetenv("CHASE_TUNE_QUICK");
  }
};

TEST_F(TuneEnvTest, DefaultsWhenUnset) {
  const TuneOptions o = options_from_env();
  EXPECT_EQ(o.repeats, 3);
  EXPECT_EQ(o.warmup, 1);
  EXPECT_EQ(o.coll_ranks, 4);
  EXPECT_FALSE(o.quick);
}

TEST_F(TuneEnvTest, ReadsTypedKnobs) {
  ::setenv("CHASE_TUNE_REPS", "7", 1);
  ::setenv("CHASE_TUNE_WARMUP", "0", 1);
  ::setenv("CHASE_TUNE_RANKS", "8", 1);
  ::setenv("CHASE_TUNE_QUICK", "1", 1);
  const TuneOptions o = options_from_env();
  EXPECT_EQ(o.repeats, 7);
  EXPECT_EQ(o.warmup, 0);
  EXPECT_EQ(o.coll_ranks, 8);
  EXPECT_TRUE(o.quick);
}

TEST_F(TuneEnvTest, InvalidValuesThrowNamingTheVariable) {
  ::setenv("CHASE_TUNE_REPS", "0", 1);
  EXPECT_THROW(options_from_env(), env::ConfigError);
  ::setenv("CHASE_TUNE_REPS", "soon", 1);
  EXPECT_THROW(options_from_env(), env::ConfigError);
  ::unsetenv("CHASE_TUNE_REPS");

  ::setenv("CHASE_TUNE_WARMUP", "-1", 1);
  EXPECT_THROW(options_from_env(), env::ConfigError);
  ::unsetenv("CHASE_TUNE_WARMUP");

  ::setenv("CHASE_TUNE_QUICK", "banana", 1);
  EXPECT_THROW(options_from_env(), env::ConfigError);
}

TEST_F(TuneEnvTest, WithDefaultsFillsOneSizePerClass) {
  TuneOptions o;
  const TuneOptions full = o.with_defaults();
  EXPECT_EQ(full.gemm_sizes.size(), 3u);
  EXPECT_EQ(full.factor_sizes.size(), 3u);
  EXPECT_EQ(full.coll_bytes.size(), 3u);
  o.quick = true;
  const TuneOptions quick = o.with_defaults();
  EXPECT_EQ(quick.gemm_sizes.size(), 3u);
  EXPECT_LT(quick.gemm_sizes.back(), full.gemm_sizes.back());
  // Explicit lists are preserved untouched.
  o.gemm_sizes = {48};
  EXPECT_EQ(o.with_defaults().gemm_sizes.size(), 1u);
}

}  // namespace
}  // namespace chase::tune
