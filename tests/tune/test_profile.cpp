// Machine-profile wire format: round-trip, schema/version gating, corrupt
// input rejection, fingerprint gating, and the deterministic derivation of
// dispatch tables from a raw measurement log.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "coll/engine.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm_policy.hpp"
#include "perf/tracker.hpp"
#include "perf/tuned.hpp"
#include "tune/profile.hpp"
#include "tune/tuner.hpp"

namespace chase::tune {
namespace {

MachineProfile sample_profile() {
  MachineProfile p;
  p.fingerprint = local_fingerprint();
  p.measurements.push_back({"gemm.d.n96.naive", 1.5e9, "flop/s"});
  p.measurements.push_back({"gemm.d.n96.micro", 6.25e9, "flop/s"});
  p.measurements.push_back({"coll.allreduce.b16384.p4.ring", 1.25e-5, "s"});
  p.tables.gemm_kernel[int(perf::ScalarTag::kF64)]
                      [int(perf::NClass::kSmall)] =
      int(la::GemmKernel::kMicro);
  p.tables.factor_kernel[int(perf::NClass::kLarge)] =
      int(la::FactorKernel::kBlocked);
  p.tables.coll_algo[int(perf::CollKind::kAllReduce)]
                    [int(perf::MsgClass::kSmallMsg)] =
      int(coll::Algorithm::kRing);
  p.tables.chunk_bytes = 128 << 10;
  p.tables.gemm_flops = 6.25e9;
  p.tables.factor_flops = 3.5e9;
  p.tables.single_speedup = 1.8;
  return p;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class ProfileTest : public ::testing::Test {
 protected:
  void TearDown() override { uninstall_profile(); }
};

TEST_F(ProfileTest, EncodeDecodeRoundTrip) {
  const MachineProfile p = sample_profile();
  const auto back = decode_profile(encode_profile(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fingerprint.host, p.fingerprint.host);
  EXPECT_EQ(back->fingerprint.cpu, p.fingerprint.cpu);
  EXPECT_EQ(back->fingerprint.threads, p.fingerprint.threads);
  ASSERT_EQ(back->measurements.size(), p.measurements.size());
  EXPECT_EQ(back->measurements[1].name, "gemm.d.n96.micro");
  EXPECT_DOUBLE_EQ(back->measurements[1].value, 6.25e9);
  EXPECT_EQ(back->measurements[1].unit, "flop/s");
  EXPECT_EQ(back->tables.gemm_kernel[int(perf::ScalarTag::kF64)]
                                    [int(perf::NClass::kSmall)],
            int(la::GemmKernel::kMicro));
  EXPECT_EQ(back->tables.factor_kernel[int(perf::NClass::kLarge)],
            int(la::FactorKernel::kBlocked));
  EXPECT_EQ(back->tables.coll_algo[int(perf::CollKind::kAllReduce)]
                                  [int(perf::MsgClass::kSmallMsg)],
            int(coll::Algorithm::kRing));
  EXPECT_EQ(back->tables.chunk_bytes, 128 << 10);
  EXPECT_DOUBLE_EQ(back->tables.gemm_flops, 6.25e9);
  EXPECT_DOUBLE_EQ(back->tables.single_speedup, 1.8);
  // Untouched entries stay unset.
  EXPECT_EQ(back->tables.gemm_kernel[int(perf::ScalarTag::kF32)]
                                    [int(perf::NClass::kSmall)],
            -1);
}

TEST_F(ProfileTest, FileRoundTrip) {
  const std::string path = temp_path("chase_profile_roundtrip.json");
  std::string error;
  ASSERT_TRUE(save_profile(sample_profile(), path, &error)) << error;
  const auto back = load_profile(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->measurements.size(), 3u);
  std::remove(path.c_str());
}

TEST_F(ProfileTest, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(load_profile(temp_path("chase_profile_nope.json"), &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

TEST_F(ProfileTest, RejectsVersionBump) {
  std::string text = encode_profile(sample_profile());
  const auto pos = text.find("\"version\": 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "\"version\": 2");
  std::string error;
  EXPECT_FALSE(decode_profile(text, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST_F(ProfileTest, RejectsForeignSchema) {
  std::string text = encode_profile(sample_profile());
  const auto pos = text.find(kProfileSchema);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string(kProfileSchema).size(), "other.schema");
  std::string error;
  EXPECT_FALSE(decode_profile(text, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST_F(ProfileTest, RejectsTruncatedAndCorruptInput) {
  const std::string text = encode_profile(sample_profile());
  EXPECT_FALSE(decode_profile(text.substr(0, text.size() / 2)));
  EXPECT_FALSE(decode_profile(""));
  EXPECT_FALSE(decode_profile("{{{ not json"));
  EXPECT_FALSE(decode_profile("[1, 2, 3]"));
  EXPECT_FALSE(decode_profile(text + "trailing-junk"));
}

TEST_F(ProfileTest, RejectsIncompleteFingerprint) {
  EXPECT_FALSE(decode_profile(
      R"({"schema": "chase.machine_profile", "version": 1,
          "measurements": [], "tables": {}})"));
  EXPECT_FALSE(decode_profile(
      R"({"schema": "chase.machine_profile", "version": 1,
          "fingerprint": {"host": "", "cpu": "x", "threads": 4},
          "measurements": [], "tables": {}})"));
}

TEST_F(ProfileTest, UnknownEnumNamesLeaveEntriesUntuned) {
  // A profile written by a hypothetical newer build with more kernels must
  // still load here; the unknown entries just stay -1.
  const auto p = decode_profile(
      R"({"schema": "chase.machine_profile", "version": 1,
          "fingerprint": {"host": "h", "cpu": "c", "threads": 4},
          "measurements": [],
          "tables": {"gemm_kernel": [
                       {"type": "d", "nclass": "small", "kernel": "warp9"},
                       {"type": "q", "nclass": "small", "kernel": "micro"},
                       {"type": "d", "nclass": "large", "kernel": "micro"}],
                     "factor_kernel": [
                       {"nclass": "small", "kernel": "gpu"}],
                     "coll_algo": [
                       {"kind": "scan", "msgclass": "small", "algo": "ring"}],
                     "chunk_bytes": 0,
                     "rates": {}}})");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->tables.gemm_kernel[int(perf::ScalarTag::kF64)]
                                 [int(perf::NClass::kSmall)],
            -1);
  EXPECT_EQ(p->tables.gemm_kernel[int(perf::ScalarTag::kF64)]
                                 [int(perf::NClass::kLarge)],
            int(la::GemmKernel::kMicro));
  EXPECT_EQ(p->tables.factor_kernel[int(perf::NClass::kSmall)], -1);
  for (const auto& row : p->tables.coll_algo) {
    for (const int v : row) EXPECT_EQ(v, -1);
  }
}

TEST_F(ProfileTest, InstallRejectsForeignFingerprintAndCounts) {
  MachineProfile p = sample_profile();
  p.fingerprint.host = "somewhere-else";
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);
  EXPECT_FALSE(install_profile(p));
  perf::set_thread_tracker(nullptr);
  EXPECT_EQ(tracker.counter("tune.profile.rejected"), 1.0);
  EXPECT_EQ(perf::tuned_tables(), nullptr);
}

TEST_F(ProfileTest, InstallPublishesTablesAndUninstallClears) {
  ASSERT_TRUE(install_profile(sample_profile()));
  const perf::TunedTables* t = perf::tuned_tables();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->chunk_bytes, 128 << 10);
  // The selection model picked up the measured machine rates.
  EXPECT_DOUBLE_EQ(perf::selection_model().gemm_flops, 6.25e9);
  uninstall_profile();
  EXPECT_EQ(perf::tuned_tables(), nullptr);
}

TEST_F(ProfileTest, InstallSkipsFingerprintCheckWhenAsked) {
  MachineProfile p = sample_profile();
  p.fingerprint.host = "somewhere-else";
  EXPECT_TRUE(install_profile(p, /*check_fingerprint=*/false));
  EXPECT_NE(perf::tuned_tables(), nullptr);
}

// ---- derive_selections: the deterministic-replay core ----

TEST(DeriveSelections, PicksArgmaxRatesAndArgminSeconds) {
  std::vector<RawMeasurement> log = {
      {"gemm.d.n96.naive", 1e9, "flop/s"},
      {"gemm.d.n96.micro", 4e9, "flop/s"},
      {"gemm.d.n700.micro", 8e9, "flop/s"},
      {"gemm.d.n700.blocked", 3e9, "flop/s"},
      {"factor.n96.naive", 2e9, "flop/s"},
      {"factor.n96.blocked", 1e9, "flop/s"},
      {"coll.allreduce.b16384.p4.naive", 2e-5, "s"},
      {"coll.allreduce.b16384.p4.ring", 1e-5, "s"},
      {"chunk.allreduce.b4194304.c16384", 3e-3, "s"},
      {"chunk.allreduce.b4194304.c65536", 1e-3, "s"},
      {"chunk.allreduce.b4194304.c262144", 2e-3, "s"},
  };
  const perf::TunedTables t = derive_selections(log);
  EXPECT_EQ(t.gemm_kernel[int(perf::ScalarTag::kF64)]
                         [int(perf::NClass::kSmall)],
            int(la::GemmKernel::kMicro));
  EXPECT_EQ(t.gemm_kernel[int(perf::ScalarTag::kF64)]
                         [int(perf::NClass::kLarge)],
            int(la::GemmKernel::kMicro));
  EXPECT_EQ(t.factor_kernel[int(perf::NClass::kSmall)],
            int(la::FactorKernel::kNaive));
  EXPECT_EQ(t.coll_algo[int(perf::CollKind::kAllReduce)]
                       [int(perf::MsgClass::kSmallMsg)],
            int(coll::Algorithm::kRing));
  EXPECT_EQ(t.chunk_bytes, 64 << 10);
  // Unmeasured classes stay unset.
  EXPECT_EQ(t.gemm_kernel[int(perf::ScalarTag::kF64)]
                         [int(perf::NClass::kMedium)],
            -1);
  EXPECT_EQ(t.factor_kernel[int(perf::NClass::kLarge)], -1);
}

TEST(DeriveSelections, FirstMeasuredWinsTies) {
  std::vector<RawMeasurement> log = {
      {"gemm.d.n96.naive", 2e9, "flop/s"},
      {"gemm.d.n96.micro", 2e9, "flop/s"},
  };
  EXPECT_EQ(derive_selections(log)
                .gemm_kernel[int(perf::ScalarTag::kF64)]
                            [int(perf::NClass::kSmall)],
            int(la::GemmKernel::kNaive));
}

TEST(DeriveSelections, IgnoresMalformedNames) {
  std::vector<RawMeasurement> log = {
      {"gemm.d.naive", 1e9, "flop/s"},          // missing size token
      {"gemm.d.nXY.micro", 1e9, "flop/s"},      // non-numeric size
      {"solve.total", 1.0, "s"},                // foreign domain
      {"", 1.0, "s"},
  };
  const perf::TunedTables t = derive_selections(log);
  for (const auto& row : t.gemm_kernel) {
    for (const int v : row) EXPECT_EQ(v, -1);
  }
}

TEST(DeriveSelections, ReplayIsDeterministic) {
  const std::vector<RawMeasurement> log = {
      {"gemm.d.n96.naive", 1e9, "flop/s"},
      {"gemm.d.n96.micro", 4e9, "flop/s"},
      {"factor.n640.blocked", 5e9, "flop/s"},
      {"coll.broadcast.b2097152.p4.tree", 1e-4, "s"},
  };
  const perf::TunedTables a = derive_selections(log);
  const perf::TunedTables b = derive_selections(log);
  for (int t = 0; t < perf::kScalarTagCount; ++t) {
    for (int c = 0; c < perf::kNClassCount; ++c) {
      EXPECT_EQ(a.gemm_kernel[t][c], b.gemm_kernel[t][c]);
    }
  }
  for (int c = 0; c < perf::kNClassCount; ++c) {
    EXPECT_EQ(a.factor_kernel[c], b.factor_kernel[c]);
  }
  for (int k = 0; k < perf::kCollKindCount; ++k) {
    for (int c = 0; c < perf::kMsgClassCount; ++c) {
      EXPECT_EQ(a.coll_algo[k][c], b.coll_algo[k][c]);
    }
  }
  EXPECT_EQ(a.chunk_bytes, b.chunk_bytes);
  EXPECT_EQ(a.coll_algo[int(perf::CollKind::kBroadcast)]
                       [int(perf::MsgClass::kLargeMsg)],
            int(coll::Algorithm::kTree));
}

}  // namespace
}  // namespace chase::tune
