// The solve-start runtime contract: precedence (override > profile >
// default), provenance counters, CHASE_PROFILE / CHASE_TUNE_REPLAY
// resolution, and the no-profile = pre-autotuner bitwise guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "coll/engine.hpp"
#include "core/sequential.hpp"
#include "la/factor/policy.hpp"
#include "la/gemm_policy.hpp"
#include "perf/tracker.hpp"
#include "perf/tuned.hpp"
#include "tests/testing.hpp"
#include "tune/profile.hpp"
#include "tune/runtime.hpp"
#include "tune/tuner.hpp"

namespace chase::tune {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class RuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CHASE_PROFILE");
    ::unsetenv("CHASE_TUNE_REPLAY");
    perf::set_thread_tracker(nullptr);
    reset_runtime_for_testing();
  }
};

// A profile for this machine that flips every domain away from the
// defaults so a tuned decision is distinguishable from a default one.
MachineProfile contrarian_profile() {
  MachineProfile p;
  p.fingerprint = local_fingerprint();
  for (int t = 0; t < perf::kScalarTagCount; ++t) {
    for (int c = 0; c < perf::kNClassCount; ++c) {
      p.tables.gemm_kernel[t][c] = int(la::GemmKernel::kBlocked);
    }
  }
  for (int c = 0; c < perf::kNClassCount; ++c) {
    p.tables.factor_kernel[c] = int(la::FactorKernel::kNaive);
  }
  for (int k = 0; k < perf::kCollKindCount; ++k) {
    for (int c = 0; c < perf::kMsgClassCount; ++c) {
      p.tables.coll_algo[k][c] = int(coll::Algorithm::kTree);
    }
  }
  p.tables.chunk_bytes = 128 << 10;
  return p;
}

TEST_F(RuntimeTest, GemmPrecedenceOverrideProfileDefault) {
  const la::GemmKernel fallback = la::gemm_kernel();
  const auto probe = [] {
    return la::gemm_kernel_for(perf::ScalarTag::kF64, 300, 300, 300);
  };
  EXPECT_EQ(probe(), fallback);

  ASSERT_TRUE(install_profile(contrarian_profile()));
  EXPECT_EQ(probe(), la::GemmKernel::kBlocked);
  {
    la::ScopedGemmKernel pin(la::GemmKernel::kMicro);
    EXPECT_EQ(probe(), la::GemmKernel::kMicro);  // override beats profile
  }
  EXPECT_EQ(probe(), la::GemmKernel::kBlocked);  // guard restored "none"

  uninstall_profile();
  EXPECT_EQ(probe(), fallback);
}

TEST_F(RuntimeTest, FactorPrecedenceOverrideProfileDefault) {
  const la::FactorKernel fallback = la::factor_kernel();
  EXPECT_EQ(la::factor_kernel_for(256), fallback);
  ASSERT_TRUE(install_profile(contrarian_profile()));
  EXPECT_EQ(la::factor_kernel_for(256), la::FactorKernel::kNaive);
  {
    la::ScopedFactorKernel pin(la::FactorKernel::kBlocked);
    EXPECT_EQ(la::factor_kernel_for(256), la::FactorKernel::kBlocked);
  }
  EXPECT_EQ(la::factor_kernel_for(256), la::FactorKernel::kNaive);
  uninstall_profile();
  EXPECT_EQ(la::factor_kernel_for(256), fallback);
}

TEST_F(RuntimeTest, CollPrecedenceOverrideProfileDefault) {
  const coll::Algorithm fallback =
      coll::algorithm_for(perf::CollKind::kAllReduce, 4096);
  ASSERT_TRUE(install_profile(contrarian_profile()));
  EXPECT_EQ(coll::algorithm_for(perf::CollKind::kAllReduce, 4096),
            coll::Algorithm::kTree);
  {
    coll::ScopedAlgorithm pin(coll::Algorithm::kRing);
    EXPECT_EQ(coll::algorithm_for(perf::CollKind::kAllReduce, 4096),
              coll::Algorithm::kRing);
  }
  EXPECT_EQ(coll::algorithm_for(perf::CollKind::kAllReduce, 4096),
            coll::Algorithm::kTree);
  uninstall_profile();
  EXPECT_EQ(coll::algorithm_for(perf::CollKind::kAllReduce, 4096), fallback);
}

TEST_F(RuntimeTest, ChunkPrecedenceOverrideProfileDefault) {
  const std::size_t fallback = coll::chunk_bytes();
  ASSERT_TRUE(install_profile(contrarian_profile()));
  EXPECT_EQ(coll::chunk_bytes(), std::size_t(128) << 10);
  {
    coll::ScopedChunkBytes pin(std::size_t(32) << 10);
    EXPECT_EQ(coll::chunk_bytes(), std::size_t(32) << 10);
  }
  EXPECT_EQ(coll::chunk_bytes(), std::size_t(128) << 10);
  uninstall_profile();
  EXPECT_EQ(coll::chunk_bytes(), fallback);
}

TEST_F(RuntimeTest, ProvenanceCountersNameTheSource) {
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);

  record_provenance();  // no profile, no overrides
  EXPECT_EQ(tracker.counter("tune.source.default"), 4.0);
  EXPECT_EQ(tracker.counter("tune.source.profile"), 0.0);
  EXPECT_EQ(tracker.counter("tune.source.env"), 0.0);

  ASSERT_TRUE(install_profile(contrarian_profile()));
  record_provenance();  // every domain now comes from the profile
  EXPECT_EQ(tracker.counter("tune.source.profile"), 4.0);
  EXPECT_EQ(tracker.counter("tune.source.default"), 4.0);

  {
    la::ScopedGemmKernel pin(la::GemmKernel::kMicro);
    record_provenance();  // gemm pinned, the other three still profiled
  }
  EXPECT_EQ(tracker.counter("tune.source.env"), 1.0);
  EXPECT_EQ(tracker.counter("tune.source.profile"), 7.0);
}

TEST_F(RuntimeTest, ChaseProfileEnvInstallsAtResolve) {
  MachineProfile p = contrarian_profile();
  const std::string path = temp_path("chase_profile_env.json");
  ASSERT_TRUE(save_profile(p, path));
  ::setenv("CHASE_PROFILE", path.c_str(), 1);
  reset_runtime_for_testing();
  ensure_profile_from_env();
  const perf::TunedTables* t = perf::tuned_tables();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->factor_kernel[0], int(la::FactorKernel::kNaive));
  // Idempotent: a second resolve does not re-read the env.
  ensure_profile_from_env();
  EXPECT_EQ(perf::tuned_tables(), t);
  std::remove(path.c_str());
}

TEST_F(RuntimeTest, RejectedProfileFallsBackToDefaultsAndCounts) {
  const std::string path = temp_path("chase_profile_corrupt.json");
  std::ofstream(path) << "{{{ definitely not a profile";
  ::setenv("CHASE_PROFILE", path.c_str(), 1);
  reset_runtime_for_testing();
  perf::Tracker tracker;
  perf::set_thread_tracker(&tracker);
  ensure_profile_from_env();
  perf::set_thread_tracker(nullptr);
  EXPECT_EQ(tracker.counter("tune.profile.rejected"), 1.0);
  EXPECT_EQ(perf::tuned_tables(), nullptr);
  // The solver still runs on defaults after a rejected profile.
  const auto h = testing::random_hermitian<double>(64, 11);
  core::ChaseConfig cfg;
  cfg.nev = 8;
  cfg.nex = 4;
  EXPECT_TRUE(core::solve_sequential<double>(h.view(), cfg).converged);
  std::remove(path.c_str());
}

TEST_F(RuntimeTest, ReplayDerivesTablesFromMeasurementLog) {
  // Stored tables say blocked everywhere; the measurement log says micro
  // wins small-double GEMM. Replay must trust the log, not the tables.
  MachineProfile p = contrarian_profile();
  p.measurements.push_back({"gemm.d.n96.naive", 1e9, "flop/s"});
  p.measurements.push_back({"gemm.d.n96.micro", 4e9, "flop/s"});
  const std::string path = temp_path("chase_profile_replay.json");
  ASSERT_TRUE(save_profile(p, path));
  ::setenv("CHASE_TUNE_REPLAY", path.c_str(), 1);
  reset_runtime_for_testing();
  ensure_profile_from_env();
  const perf::TunedTables* t = perf::tuned_tables();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->gemm_kernel[int(perf::ScalarTag::kF64)]
                          [int(perf::NClass::kSmall)],
            int(la::GemmKernel::kMicro));
  // Classes the log never measured are unset under replay, even though the
  // stored tables had entries — selections are a pure function of the log.
  EXPECT_EQ(t->factor_kernel[0], -1);
  std::remove(path.c_str());
}

TEST_F(RuntimeTest, ProfileLessSolveMatchesPinnedDefaultsBitwise) {
  // The autotuner contract: a process with no profile and no overrides is
  // bitwise identical to one that explicitly pins the build defaults.
  const auto h = testing::random_hermitian<double>(96, 7);
  core::ChaseConfig cfg;
  cfg.nev = 12;
  cfg.nex = 6;

  const auto plain = core::solve_sequential<double>(h.view(), cfg);
  ASSERT_TRUE(plain.converged);

  core::ChaseResult<double> pinned;
  {
    la::ScopedGemmKernel gemm_pin(la::gemm_kernel());
    la::ScopedFactorKernel factor_pin(la::factor_kernel());
    pinned = core::solve_sequential<double>(h.view(), cfg);
  }
  ASSERT_TRUE(pinned.converged);

  ASSERT_EQ(plain.eigenvalues.size(), pinned.eigenvalues.size());
  for (std::size_t i = 0; i < plain.eigenvalues.size(); ++i) {
    EXPECT_EQ(plain.eigenvalues[i], pinned.eigenvalues[i]) << "i=" << i;
  }
  ASSERT_EQ(plain.eigenvectors.rows(), pinned.eigenvectors.rows());
  ASSERT_EQ(plain.eigenvectors.cols(), pinned.eigenvectors.cols());
  for (la::Index j = 0; j < plain.eigenvectors.cols(); ++j) {
    for (la::Index i = 0; i < plain.eigenvectors.rows(); ++i) {
      EXPECT_EQ(plain.eigenvectors(i, j), pinned.eigenvectors(i, j));
    }
  }
}

}  // namespace
}  // namespace chase::tune
