#include "perf/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace chase::perf {
namespace {

TEST(CsvWriter, DisabledWithoutDirectory) {
  // No env override, no explicit dir: inert.
  unsetenv("CHASE_BENCH_CSV_DIR");
  CsvWriter w("should_not_exist.csv");
  EXPECT_FALSE(w.enabled());
  w.header({"a", "b"});
  w.row(1, 2.5, "x");  // must be a no-op, not a crash
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const auto dir = std::filesystem::temp_directory_path().string();
  CsvWriter w("chase_report_test.csv", dir);
  ASSERT_TRUE(w.enabled());
  w.header({"name", "value", "flag"});
  w.row("alpha", 1.25, 1);
  w.row("beta", -3, 0);
  const std::string path = w.path();
  // Destructor-less flush: reopen after scope.
  {
    CsvWriter done = std::move(w);
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "name,value,flag");
  EXPECT_EQ(l2, "alpha,1.25,1");
  EXPECT_EQ(l3, "beta,-3,0");
  std::remove(path.c_str());
}

TEST(CsvWriter, EnvironmentVariableSelectsDirectory) {
  const auto dir = std::filesystem::temp_directory_path().string();
  setenv("CHASE_BENCH_CSV_DIR", dir.c_str(), 1);
  {
    CsvWriter w("chase_env_test.csv");
    EXPECT_TRUE(w.enabled());
    w.header({"x"});
  }
  unsetenv("CHASE_BENCH_CSV_DIR");
  const std::string path = dir + "/chase_env_test.csv";
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chase::perf
