// MachineModel::calibrate_gemm — the measured-rate hook that replaces the
// model's effective GEMM rate with what the la kernel engine actually
// sustained (the "la.gemm.flops" / "la.gemm.seconds" counters recorded by
// src/la/gemm.hpp on every tracked call).
#include <gtest/gtest.h>

#include <complex>

#include "la/gemm.hpp"
#include "la/gemm_policy.hpp"
#include "la/hemm.hpp"
#include "perf/machine.hpp"
#include "perf/tracker.hpp"
#include "tests/testing.hpp"

namespace chase::perf {
namespace {

using chase::testing::random_hermitian;
using chase::testing::random_matrix;
using la::Index;

TEST(MachineCalibration, GemmRateComesFromTrackedCounters) {
  using T = double;
  la::ScopedGemmKernel scoped(la::GemmKernel::kMicro);
  Tracker t;
  set_thread_tracker(&t);
  const Index n = 256;
  auto a = random_matrix<T>(n, n, 1);
  auto b = random_matrix<T>(n, n, 2);
  la::Matrix<T> c(n, n);
  // Enough repetitions to clear the calibration's minimum-sample guard.
  double expect_flops = 0;
  while (t.counter("la.gemm.seconds") < 2e-3) {
    la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
    expect_flops += 2.0 * double(n) * double(n) * double(n);
  }
  set_thread_tracker(nullptr);

  EXPECT_DOUBLE_EQ(t.counter("la.gemm.flops"), expect_flops);
  EXPECT_GT(t.counter("la.kernel.micro.calls"), 0);

  MachineModel m;
  const double factory_rate = m.gemm_flops;
  m.calibrate_gemm(t, /*min_seconds=*/1e-3);
  EXPECT_NE(m.gemm_flops, factory_rate);
  EXPECT_DOUBLE_EQ(
      m.gemm_flops,
      t.counter("la.gemm.flops") / t.counter("la.gemm.seconds"));
  // Sanity: a real measured rate on any host is positive and far below the
  // A100 factory constant's 17 Tflop/s.
  EXPECT_GT(m.gemm_flops, 0);
}

TEST(MachineCalibration, TinySamplesAreIgnored) {
  using T = double;
  Tracker t;
  set_thread_tracker(&t);
  auto a = random_matrix<T>(8, 8, 3);
  auto b = random_matrix<T>(8, 8, 4);
  la::Matrix<T> c(8, 8);
  la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
  set_thread_tracker(nullptr);

  MachineModel m;
  const double factory_rate = m.gemm_flops;
  m.calibrate_gemm(t, /*min_seconds=*/10.0);
  EXPECT_DOUBLE_EQ(m.gemm_flops, factory_rate);
}

TEST(MachineCalibration, HemmCallsFeedTheSameCounters) {
  using T = std::complex<double>;
  la::ScopedGemmKernel scoped(la::GemmKernel::kMicro);
  Tracker t;
  set_thread_tracker(&t);
  const Index n = 192;
  auto h = random_hermitian<T>(n, 5);
  auto b = random_matrix<T>(n, 32, 6);
  la::Matrix<T> c(n, 32);
  la::hemm(T(1), h.cview(), b.cview(), T(0), c.view());
  set_thread_tracker(nullptr);

  EXPECT_DOUBLE_EQ(t.counter("la.gemm.flops"),
                   8.0 * double(n) * double(n) * 32.0);
  EXPECT_GT(t.counter("la.gemm.seconds"), 0);
  EXPECT_DOUBLE_EQ(t.counter("la.kernel.hemm.calls"), 1.0);
}

}  // namespace
}  // namespace chase::perf
