// MachineModel::calibrate_gemm — the measured-rate hook that replaces the
// model's effective GEMM rate with what the la kernel engine actually
// sustained (the "la.gemm.flops" / "la.gemm.seconds" counters recorded by
// src/la/gemm.hpp on every tracked call).
#include <gtest/gtest.h>

#include <complex>

#include "la/factor/policy.hpp"
#include "la/gemm.hpp"
#include "la/gemm_policy.hpp"
#include "la/hemm.hpp"
#include "la/potrf.hpp"
#include "la/trsm.hpp"
#include "perf/machine.hpp"
#include "perf/tracker.hpp"
#include "tests/testing.hpp"

namespace chase::perf {
namespace {

using chase::testing::random_hermitian;
using chase::testing::random_matrix;
using la::Index;

TEST(MachineCalibration, GemmRateComesFromTrackedCounters) {
  using T = double;
  la::ScopedGemmKernel scoped(la::GemmKernel::kMicro);
  Tracker t;
  set_thread_tracker(&t);
  const Index n = 256;
  auto a = random_matrix<T>(n, n, 1);
  auto b = random_matrix<T>(n, n, 2);
  la::Matrix<T> c(n, n);
  // Enough repetitions to clear the calibration's minimum-sample guard.
  double expect_flops = 0;
  while (t.counter("la.gemm.seconds") < 2e-3) {
    la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
    expect_flops += 2.0 * double(n) * double(n) * double(n);
  }
  set_thread_tracker(nullptr);

  EXPECT_DOUBLE_EQ(t.counter("la.gemm.flops"), expect_flops);
  EXPECT_GT(t.counter("la.kernel.micro.calls"), 0);

  MachineModel m;
  const double factory_rate = m.gemm_flops;
  m.calibrate_gemm(t, /*min_seconds=*/1e-3);
  EXPECT_NE(m.gemm_flops, factory_rate);
  EXPECT_DOUBLE_EQ(
      m.gemm_flops,
      t.counter("la.gemm.flops") / t.counter("la.gemm.seconds"));
  // Sanity: a real measured rate on any host is positive and far below the
  // A100 factory constant's 17 Tflop/s.
  EXPECT_GT(m.gemm_flops, 0);
}

TEST(MachineCalibration, TinySamplesAreIgnored) {
  using T = double;
  Tracker t;
  set_thread_tracker(&t);
  auto a = random_matrix<T>(8, 8, 3);
  auto b = random_matrix<T>(8, 8, 4);
  la::Matrix<T> c(8, 8);
  la::gemm(T(1), a.cview(), b.cview(), T(0), c.view());
  set_thread_tracker(nullptr);

  MachineModel m;
  const double factory_rate = m.gemm_flops;
  m.calibrate_gemm(t, /*min_seconds=*/10.0);
  EXPECT_DOUBLE_EQ(m.gemm_flops, factory_rate);
}

TEST(MachineCalibration, HemmCallsFeedTheSameCounters) {
  using T = std::complex<double>;
  la::ScopedGemmKernel scoped(la::GemmKernel::kMicro);
  Tracker t;
  set_thread_tracker(&t);
  const Index n = 192;
  auto h = random_hermitian<T>(n, 5);
  auto b = random_matrix<T>(n, 32, 6);
  la::Matrix<T> c(n, 32);
  la::hemm(T(1), h.cview(), b.cview(), T(0), c.view());
  set_thread_tracker(nullptr);

  EXPECT_DOUBLE_EQ(t.counter("la.gemm.flops"),
                   8.0 * double(n) * double(n) * 32.0);
  EXPECT_GT(t.counter("la.gemm.seconds"), 0);
  EXPECT_DOUBLE_EQ(t.counter("la.kernel.hemm.calls"), 1.0);
}

TEST(MachineCalibration, FactorRatePoolsAllFiveFamilies) {
  using T = double;
  la::ScopedFactorKernel scoped(la::FactorKernel::kBlocked);
  Tracker t;
  set_thread_tracker(&t);
  const Index n = 160;
  // One POTRF + one TRSM + one HERK; calibrate_factor should pool the
  // la.{trsm,trmm,potrf,herk,hetrd} counter families into a single rate.
  auto x = random_matrix<T>(n + 8, n, 7);
  la::Matrix<T> g(n, n);
  double expect_flops = 0;
  while (t.counter("la.potrf.seconds") + t.counter("la.trsm.seconds") +
             t.counter("la.herk.seconds") <
         2e-3) {
    la::herk_upper(T(1), x.cview(), T(0), g.view());
    for (Index j = 0; j < n; ++j) g(j, j) += T(n);
    ASSERT_EQ(la::potrf_upper(g.view()), 0);
    auto rhs = random_matrix<T>(64, n, 8);
    la::trsm_right_upper(g.cview(), rhs.view());
    expect_flops += double(n + 8) * double(n) * double(n)    // herk
                    + double(n) * double(n) * double(n) / 3  // potrf
                    + 64.0 * double(n) * double(n);          // trsm
  }
  set_thread_tracker(nullptr);

  const double tracked = t.counter("la.herk.flops") +
                         t.counter("la.potrf.flops") +
                         t.counter("la.trsm.flops");
  EXPECT_DOUBLE_EQ(tracked, expect_flops);
  EXPECT_GT(t.counter("la.factor.blocked.calls"), 0);

  MachineModel m;
  const double factory_rate = m.factor_flops;
  m.calibrate_factor(t, /*min_seconds=*/1e-3);
  EXPECT_NE(m.factor_flops, factory_rate);
  const double seconds = t.counter("la.herk.seconds") +
                         t.counter("la.potrf.seconds") +
                         t.counter("la.trsm.seconds");
  EXPECT_DOUBLE_EQ(m.factor_flops, tracked / seconds);
  EXPECT_GT(m.factor_flops, 0);
}

TEST(MachineCalibration, FactorTinySamplesAreIgnored) {
  using T = double;
  Tracker t;
  set_thread_tracker(&t);
  auto r = random_matrix<T>(8, 8, 9);
  for (Index j = 0; j < 8; ++j) r(j, j) += T(8);
  auto rhs = random_matrix<T>(8, 8, 10);
  la::trsm_right_upper(r.cview(), rhs.view());
  set_thread_tracker(nullptr);

  MachineModel m;
  const double factory_rate = m.factor_flops;
  m.calibrate_factor(t, /*min_seconds=*/10.0);
  EXPECT_DOUBLE_EQ(m.factor_flops, factory_rate);
}

}  // namespace
}  // namespace chase::perf
