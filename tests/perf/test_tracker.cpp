#include "perf/tracker.hpp"

#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"

namespace chase::perf {
namespace {

TEST(Tracker, RegionsAccumulateFlops) {
  Tracker t;
  t.set_region(Region::kFilter);
  t.add_flops(FlopClass::kGemm, 1e9);
  t.set_region(Region::kQr);
  t.add_flops(FlopClass::kPanel, 2e9);
  t.add_flops(FlopClass::kSmall, 5e6);
  t.flush();
  EXPECT_DOUBLE_EQ(
      t.costs(Region::kFilter).flops[std::size_t(int(FlopClass::kGemm))], 1e9);
  EXPECT_DOUBLE_EQ(
      t.costs(Region::kQr).flops[std::size_t(int(FlopClass::kPanel))], 2e9);
  EXPECT_DOUBLE_EQ(
      t.costs(Region::kQr).flops[std::size_t(int(FlopClass::kSmall))], 5e6);
}

TEST(Tracker, RegionScopeRestores) {
  Tracker t;
  set_thread_tracker(&t);
  t.set_region(Region::kFilter);
  {
    RegionScope scope(Region::kQr);
    EXPECT_EQ(t.region(), Region::kQr);
  }
  EXPECT_EQ(t.region(), Region::kFilter);
  set_thread_tracker(nullptr);
}

TEST(Tracker, CollectivesRecordedWithRegion) {
  Tracker t;
  t.set_region(Region::kRayleighRitz);
  t.begin_collective();
  t.end_collective(CollKind::kAllReduce, 4096, 8);
  t.flush();
  ASSERT_EQ(t.collectives().size(), 1u);
  EXPECT_EQ(t.collectives()[0].region, Region::kRayleighRitz);
  EXPECT_EQ(t.collectives()[0].bytes, 4096u);
  EXPECT_EQ(t.collectives()[0].nranks, 8);
  EXPECT_EQ(t.costs(Region::kRayleighRitz).coll_count, 1u);
}

TEST(Tracker, CommunicatorRecordsEventsPerBackend) {
  // STD backend must bracket each collective with two staging copies;
  // NCCL must record none.
  for (Backend b : {Backend::kStdGpu, Backend::kNcclGpu}) {
    const int p = 4;
    std::vector<Tracker> trackers(p);
    comm::Team team(p, b);
    team.run(
        [&](comm::Communicator& comm) {
          thread_tracker()->set_region(Region::kQr);
          double x = 1.0;
          comm.all_reduce(&x, 1);
        },
        &trackers);
    const auto& t = trackers[0];
    EXPECT_EQ(t.collectives().size(), 1u);
    const std::size_t expect_copies = b == Backend::kStdGpu ? 2u : 0u;
    EXPECT_EQ(t.memcpys().size(), expect_copies) << backend_name(b);
    if (b == Backend::kStdGpu) {
      EXPECT_FALSE(t.memcpys()[0].to_device);
      EXPECT_TRUE(t.memcpys()[1].to_device);
    }
  }
}

TEST(Machine, MpiAllreducePowerOfTwoAdvantage) {
  MachineModel m;
  const std::size_t bytes = 1 << 20;
  // The paper observes dips at power-of-two rank counts (Fig. 3a).
  EXPECT_LT(m.mpi_allreduce_seconds(bytes, 16),
            m.mpi_allreduce_seconds(bytes, 15));
  EXPECT_LT(m.mpi_allreduce_seconds(bytes, 16),
            m.mpi_allreduce_seconds(bytes, 17));
}

TEST(Machine, NcclBeatsStagedMpiForLargePayloads) {
  MachineModel m;
  const std::size_t bytes = std::size_t(64) << 20;
  const int p = 16;
  const double mpi = m.mpi_allreduce_seconds(bytes, p) +
                     2 * m.memcpy_seconds(bytes);  // staging both ways
  const double nccl = m.nccl_allreduce_seconds(bytes, p);
  EXPECT_LT(nccl, mpi);
}

TEST(Machine, CollectiveCostsGrowWithRanksAndBytes) {
  MachineModel m;
  EXPECT_LT(m.mpi_allreduce_seconds(1024, 4), m.mpi_allreduce_seconds(1024, 64));
  EXPECT_LT(m.nccl_allreduce_seconds(1 << 10, 8),
            m.nccl_allreduce_seconds(1 << 24, 8));
  EXPECT_EQ(m.mpi_allreduce_seconds(1024, 1), 0.0);
}

TEST(CostModel, PriceTrackerSplitsBuckets) {
  Tracker t;
  t.set_region(Region::kFilter);
  t.add_flops(FlopClass::kGemm, 17.0e12);  // exactly 1 second of GEMM
  t.begin_collective();
  t.end_collective(CollKind::kAllReduce, 1 << 20, 4);
  t.record_memcpy(1 << 20, false);
  t.flush();

  MachineModel m;
  auto costs = price_tracker(m, Backend::kStdGpu, t);
  const auto& filter = costs[std::size_t(int(Region::kFilter))];
  EXPECT_NEAR(filter.compute, 1.0, 1e-9);
  EXPECT_GT(filter.comm, 0.0);
  EXPECT_GT(filter.movement, 0.0);
  EXPECT_DOUBLE_EQ(filter.total(),
                   filter.compute + filter.comm + filter.movement);
}

TEST(CostModel, SumCosts) {
  KernelCosts k{};
  k[std::size_t(int(Region::kFilter))] = {1.0, 2.0, 3.0};
  k[std::size_t(int(Region::kQr))] = {0.5, 0.0, 0.0};
  auto total = sum_costs(k);
  EXPECT_DOUBLE_EQ(total.compute, 1.5);
  EXPECT_DOUBLE_EQ(total.comm, 2.0);
  EXPECT_DOUBLE_EQ(total.movement, 3.0);
}

}  // namespace
}  // namespace chase::perf
