#include "dist/dist_matrix.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "dist/multivector.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::dist {
namespace {

using chase::testing::random_hermitian;
using chase::testing::random_matrix;
using chase::testing::tol;

struct GridCase {
  int nprow;
  int npcol;
  bool cyclic;
  Index block;
};

const GridCase kGridCases[] = {
    {1, 1, false, 0}, {2, 2, false, 0}, {2, 3, false, 0},
    {4, 1, false, 0}, {2, 2, true, 3},  {2, 3, true, 2},
};

class DistMatrixGrid : public ::testing::TestWithParam<GridCase> {};

IndexMap make_map(Index n, int parts, const GridCase& gc) {
  return gc.cyclic ? IndexMap::block_cyclic(n, parts, gc.block)
                   : IndexMap::block(n, parts);
}

TEST_P(DistMatrixGrid, ApplyC2BMatchesSequential) {
  using T = std::complex<double>;
  const auto gc = GetParam();
  const Index n = 37, ne = 5;
  auto h = random_hermitian<T>(n, 1);
  auto x = random_matrix<T>(n, ne, 2);
  // Sequential reference: y = H^H x = H x.
  la::Matrix<T> yref(n, ne);
  la::gemm(T(1), la::Op::kConjTrans, h.cview(), la::Op::kNoTrans, x.cview(),
           T(0), yref.view());

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = make_map(n, gc.nprow, gc);
    auto cmap = make_map(n, gc.npcol, gc);
    DistHermitianMatrix<T> hd(grid, rmap, cmap);
    hd.fill_from_global(h.cview());

    // Local C-layout input block.
    la::Matrix<T> xc(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), x.cview(), xc.view());
    la::Matrix<T> yb(cmap.local_size(grid.my_col()), ne);
    hd.apply_c2b(T(1), xc.cview(), T(0), yb.view());

    // Compare against the reference rows this rank should hold in B layout.
    la::Matrix<T> yexp(cmap.local_size(grid.my_col()), ne);
    scatter_rows(cmap, grid.my_col(), yref.cview(), yexp.view());
    EXPECT_LE(la::max_abs_diff(yb.cview(), yexp.cview()),
              tol<T>(1e5));
  });
}

TEST_P(DistMatrixGrid, ApplyB2CMatchesSequential) {
  using T = std::complex<double>;
  const auto gc = GetParam();
  const Index n = 41, ne = 4;
  auto h = random_hermitian<T>(n, 3);
  auto x = random_matrix<T>(n, ne, 4);
  la::Matrix<T> yref(n, ne);
  la::gemm(T(1), h.cview(), x.cview(), T(0), yref.view());

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = make_map(n, gc.nprow, gc);
    auto cmap = make_map(n, gc.npcol, gc);
    DistHermitianMatrix<T> hd(grid, rmap, cmap);
    hd.fill_from_global(h.cview());

    la::Matrix<T> xb(cmap.local_size(grid.my_col()), ne);
    scatter_rows(cmap, grid.my_col(), x.cview(), xb.view());
    la::Matrix<T> yc(rmap.local_size(grid.my_row()), ne);
    hd.apply_b2c(T(1), xb.cview(), T(0), yc.view());

    la::Matrix<T> yexp(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), yref.cview(), yexp.view());
    EXPECT_LE(la::max_abs_diff(yc.cview(), yexp.cview()),
              tol<T>(1e5));
  });
}

TEST_P(DistMatrixGrid, RoundTripRecurrenceStaysInCLayout) {
  // Two applications (even degree) must land back in the C layout and equal
  // the sequential H^2 x — the core of the even-degree filter trick.
  using T = double;
  const auto gc = GetParam();
  const Index n = 24, ne = 3;
  auto h = random_hermitian<T>(n, 5);
  auto x = random_matrix<T>(n, ne, 6);
  la::Matrix<T> hx(n, ne), h2x(n, ne);
  la::gemm(T(1), h.cview(), x.cview(), T(0), hx.view());
  la::gemm(T(1), h.cview(), hx.cview(), T(0), h2x.view());

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = make_map(n, gc.nprow, gc);
    auto cmap = make_map(n, gc.npcol, gc);
    DistHermitianMatrix<T> hd(grid, rmap, cmap);
    hd.fill_from_global(h.cview());

    la::Matrix<T> c(rmap.local_size(grid.my_row()), ne);
    la::Matrix<T> b(cmap.local_size(grid.my_col()), ne);
    scatter_rows(rmap, grid.my_row(), x.cview(), c.view());
    hd.apply_c2b(T(1), c.cview(), T(0), b.view());
    hd.apply_b2c(T(1), b.cview(), T(0), c.view());

    la::Matrix<T> cexp(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), h2x.cview(), cexp.view());
    EXPECT_LE(la::max_abs_diff(c.cview(), cexp.cview()), tol<T>(1e6));
  });
}

TEST_P(DistMatrixGrid, ShiftDiagonalMatchesGlobalShift) {
  using T = std::complex<double>;
  const auto gc = GetParam();
  const Index n = 19;
  auto h = random_hermitian<T>(n, 7);

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = make_map(n, gc.nprow, gc);
    auto cmap = make_map(n, gc.npcol, gc);
    DistHermitianMatrix<T> hd(grid, rmap, cmap);
    hd.fill_from_global(h.cview());
    hd.shift_diagonal(-2.5);
    hd.shift_diagonal(1.0);

    DistHermitianMatrix<T> hexp(grid, rmap, cmap);
    hexp.fill([&](Index i, Index j) {
      return h(i, j) + (i == j ? T(-1.5) : T(0));
    });
    EXPECT_LE(la::max_abs_diff(hd.local().as_const(), hexp.local().as_const()), tol<T>());
  });
}

TEST_P(DistMatrixGrid, RedistributeC2BMatchesScatter) {
  using T = std::complex<double>;
  const auto gc = GetParam();
  const Index n = 29, ne = 4;
  auto x = random_matrix<T>(n, ne, 8);

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = make_map(n, gc.nprow, gc);
    auto cmap = make_map(n, gc.npcol, gc);

    la::Matrix<T> c(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), x.cview(), c.view());
    la::Matrix<T> b(cmap.local_size(grid.my_col()), ne);
    redistribute_c2b<T>(grid, rmap, cmap, c.cview(), b.view());

    la::Matrix<T> bexp(cmap.local_size(grid.my_col()), ne);
    scatter_rows(cmap, grid.my_col(), x.cview(), bexp.view());
    EXPECT_LE(la::max_abs_diff(b.cview(), bexp.cview()), tol<T>());
  });
}

TEST_P(DistMatrixGrid, GatherRowsReconstructsFullMatrix) {
  using T = double;
  const auto gc = GetParam();
  const Index n = 23, ne = 3;
  auto x = random_matrix<T>(n, ne, 9);

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = make_map(n, gc.nprow, gc);
    la::Matrix<T> local(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), x.cview(), local.view());

    la::Matrix<T> full(n, ne);
    gather_rows(grid.col_comm(), rmap, local.cview(), full.view());
    EXPECT_LE(la::max_abs_diff(full.cview(), x.cview()), tol<T>());
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, DistMatrixGrid, ::testing::ValuesIn(kGridCases),
                         [](const auto& info) {
                           const auto& gc = info.param;
                           return std::to_string(gc.nprow) + "x" +
                                  std::to_string(gc.npcol) +
                                  (gc.cyclic ? "_cyclic" + std::to_string(gc.block)
                                             : "_block");
                         });

TEST(DistMatrix, SingleBroadcastOnSquareGridBlockMap) {
  // The paper's claim: on a square grid one broadcast suffices for the
  // C->B redistribution. Verify via the recorded event stream.
  using T = double;
  const Index n = 16, ne = 2;
  const int p = 2;
  auto x = random_matrix<T>(n, ne, 10);
  std::vector<perf::Tracker> trackers(static_cast<std::size_t>(p * p));
  comm::Team team(p * p);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, p, p);
        auto map = IndexMap::block(n, p);
        la::Matrix<T> c(map.local_size(grid.my_row()), ne);
        scatter_rows(map, grid.my_row(), x.cview(), c.view());
        la::Matrix<T> b(map.local_size(grid.my_col()), ne);
        redistribute_c2b<T>(grid, map, map, c.cview(), b.view());
      },
      &trackers);
  std::size_t bcasts = 0;
  for (const auto& ev : trackers[0].collectives()) {
    if (ev.kind == perf::CollKind::kBroadcast) ++bcasts;
  }
  EXPECT_EQ(bcasts, 1u);
}

TEST(DistMatrix, GatherUsesOneBroadcastPerPart) {
  using T = double;
  const Index n = 16, ne = 2;
  const int p = 4;
  auto x = random_matrix<T>(n, ne, 11);
  std::vector<perf::Tracker> trackers(static_cast<std::size_t>(p));
  comm::Team team(p);
  team.run(
      [&](comm::Communicator& world) {
        auto map = IndexMap::block(n, p);
        la::Matrix<T> local(map.local_size(world.rank()), ne);
        scatter_rows(map, world.rank(), x.cview(), local.view());
        la::Matrix<T> full(n, ne);
        gather_rows(world, map, local.cview(), full.view());
      },
      &trackers);
  std::size_t bcasts = 0;
  for (const auto& ev : trackers[0].collectives()) {
    if (ev.kind == perf::CollKind::kBroadcast) ++bcasts;
  }
  EXPECT_EQ(bcasts, std::size_t(p));
}

}  // namespace
}  // namespace chase::dist
