#include "dist/index_map.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace chase::dist {
namespace {

void check_map_invariants(const IndexMap& map) {
  const Index n = map.global_size();
  const int p = map.parts();
  // Every global index has exactly one owner and a consistent local index.
  std::vector<Index> counts(std::size_t(p), 0);
  for (Index g = 0; g < n; ++g) {
    const int o = map.owner(g);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, p);
    const Index l = map.local_index(g);
    EXPECT_EQ(map.global_index(o, l), g);
    counts[std::size_t(o)] += 1;
  }
  Index total = 0;
  for (int part = 0; part < p; ++part) {
    EXPECT_EQ(map.local_size(part), counts[std::size_t(part)]);
    total += map.local_size(part);
    // Runs cover exactly the owned indices, in ascending order, with
    // contiguous local positions.
    Index covered = 0;
    Index prev_end = -1;
    Index expected_local = 0;
    for (const auto& run : map.runs(part)) {
      EXPECT_GT(run.global_begin, prev_end);
      EXPECT_EQ(run.local_begin, expected_local);
      for (Index k = 0; k < run.length; ++k) {
        EXPECT_EQ(map.owner(run.global_begin + k), part);
        EXPECT_EQ(map.local_index(run.global_begin + k), run.local_begin + k);
      }
      prev_end = run.global_begin + run.length - 1;
      expected_local += run.length;
      covered += run.length;
    }
    EXPECT_EQ(covered, map.local_size(part));
  }
  EXPECT_EQ(total, n);
}

TEST(IndexMap, BlockEvenDivision) {
  auto map = IndexMap::block(12, 4);
  EXPECT_EQ(map.block_size(), 3);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(map.local_size(p), 3);
  EXPECT_EQ(map.owner(0), 0);
  EXPECT_EQ(map.owner(11), 3);
  EXPECT_EQ(map.local_index(7), 1);
  check_map_invariants(map);
}

TEST(IndexMap, BlockRaggedTail) {
  auto map = IndexMap::block(10, 4);  // blocks of 3: sizes 3,3,3,1
  EXPECT_EQ(map.local_size(0), 3);
  EXPECT_EQ(map.local_size(3), 1);
  check_map_invariants(map);
}

TEST(IndexMap, BlockMorePartsThanElements) {
  auto map = IndexMap::block(3, 5);
  EXPECT_EQ(map.local_size(0), 1);
  EXPECT_EQ(map.local_size(3), 0);
  EXPECT_EQ(map.local_size(4), 0);
  check_map_invariants(map);
}

TEST(IndexMap, BlockCyclicRoundRobin) {
  auto map = IndexMap::block_cyclic(10, 2, 2);
  // blocks of 2 alternate: part0 owns 0,1,4,5,8,9; part1 owns 2,3,6,7.
  EXPECT_EQ(map.owner(0), 0);
  EXPECT_EQ(map.owner(2), 1);
  EXPECT_EQ(map.owner(4), 0);
  EXPECT_EQ(map.local_size(0), 6);
  EXPECT_EQ(map.local_size(1), 4);
  EXPECT_EQ(map.local_index(4), 2);
  EXPECT_EQ(map.local_index(9), 5);
  check_map_invariants(map);
}

TEST(IndexMap, BlockCyclicSweep) {
  for (Index n : {1, 7, 16, 33}) {
    for (int p : {1, 2, 3, 4}) {
      for (Index b : {1, 2, 5}) {
        SCOPED_TRACE("n=" + std::to_string(n) + " p=" + std::to_string(p) +
                     " b=" + std::to_string(b));
        check_map_invariants(IndexMap::block_cyclic(n, p, b));
      }
    }
  }
}

TEST(IndexMap, BlockIsDetected) {
  EXPECT_TRUE(IndexMap::block(100, 4).is_block());
  EXPECT_FALSE(IndexMap::block_cyclic(100, 4, 8).is_block());
}

TEST(IndexMap, EqualityComparesParameters) {
  EXPECT_TRUE(IndexMap::block(12, 4) == IndexMap::block_cyclic(12, 4, 3));
  EXPECT_FALSE(IndexMap::block(12, 4) == IndexMap::block(12, 3));
}

TEST(IndexMap, MaxLocalSize) {
  auto map = IndexMap::block(10, 4);
  EXPECT_EQ(map.max_local_size(), 3);
}

TEST(IndexMap, OutOfRangeThrows) {
  auto map = IndexMap::block(10, 2);
  EXPECT_THROW(map.owner(10), Error);
  EXPECT_THROW(map.owner(-1), Error);
  EXPECT_THROW(map.local_size(2), Error);
}

}  // namespace
}  // namespace chase::dist
