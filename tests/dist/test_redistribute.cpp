// Direct tests of the generic row redistribution (both directions, both map
// kinds) — the "Bcast(C2, ccomm)" machinery of Algorithm 2 lines 14/21 and
// the inverse direction Lanczos depends on.
#include <gtest/gtest.h>

#include <complex>

#include "dist/multivector.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::dist {
namespace {

using chase::testing::random_matrix;
using chase::testing::tol;

struct Case {
  int nprow;
  int npcol;
  bool cyclic;
};

class RedistributeGrid : public ::testing::TestWithParam<Case> {};

TEST_P(RedistributeGrid, B2CInvertsC2B) {
  using T = std::complex<double>;
  const auto gc = GetParam();
  const Index n = 31, ne = 4;
  auto x = random_matrix<T>(n, ne, 1);

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = gc.cyclic ? IndexMap::block_cyclic(n, gc.nprow, 3)
                          : IndexMap::block(n, gc.nprow);
    auto cmap = gc.cyclic ? IndexMap::block_cyclic(n, gc.npcol, 3)
                          : IndexMap::block(n, gc.npcol);

    la::Matrix<T> c(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), x.cview(), c.view());
    la::Matrix<T> b(cmap.local_size(grid.my_col()), ne);
    redistribute_c2b<T>(grid, rmap, cmap, c.cview(), b.view());

    // Round trip back into the C layout.
    la::Matrix<T> c2(rmap.local_size(grid.my_row()), ne);
    redistribute_b2c<T>(grid, rmap, cmap, b.cview(), c2.view());
    EXPECT_EQ(la::max_abs_diff(c.cview(), c2.cview()), 0.0);  // pure copies
  });
}

TEST_P(RedistributeGrid, B2CMatchesScatterReference) {
  using T = double;
  const auto gc = GetParam();
  const Index n = 27, ne = 3;
  auto x = random_matrix<T>(n, ne, 2);

  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = gc.cyclic ? IndexMap::block_cyclic(n, gc.nprow, 4)
                          : IndexMap::block(n, gc.nprow);
    auto cmap = gc.cyclic ? IndexMap::block_cyclic(n, gc.npcol, 4)
                          : IndexMap::block(n, gc.npcol);

    // Start from a consistent B layout (scatter the global reference).
    la::Matrix<T> b(cmap.local_size(grid.my_col()), ne);
    scatter_rows(cmap, grid.my_col(), x.cview(), b.view());
    la::Matrix<T> c(rmap.local_size(grid.my_row()), ne);
    redistribute_b2c<T>(grid, rmap, cmap, b.cview(), c.view());

    la::Matrix<T> expect(rmap.local_size(grid.my_row()), ne);
    scatter_rows(rmap, grid.my_row(), x.cview(), expect.view());
    EXPECT_EQ(la::max_abs_diff(c.cview(), expect.cview()), 0.0);
  });
}

TEST_P(RedistributeGrid, ZeroColumnsIsNoop) {
  using T = double;
  const auto gc = GetParam();
  const Index n = 16;
  comm::Team team(gc.nprow * gc.npcol);
  team.run([&](comm::Communicator& world) {
    comm::Grid2d grid(world, gc.nprow, gc.npcol);
    auto rmap = IndexMap::block(n, gc.nprow);
    auto cmap = IndexMap::block(n, gc.npcol);
    la::Matrix<T> c(rmap.local_size(grid.my_row()), 0);
    la::Matrix<T> b(cmap.local_size(grid.my_col()), 0);
    redistribute_c2b<T>(grid, rmap, cmap, c.cview(), b.view());  // no hang
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, RedistributeGrid,
    ::testing::Values(Case{1, 1, false}, Case{2, 2, false}, Case{3, 2, false},
                      Case{2, 2, true}, Case{2, 3, true}),
    [](const auto& info) {
      const auto& gc = info.param;
      return std::to_string(gc.nprow) + "x" + std::to_string(gc.npcol) +
             (gc.cyclic ? "_cyclic" : "_block");
    });

}  // namespace
}  // namespace chase::dist
