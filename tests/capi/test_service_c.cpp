// C bindings of the solver service: lifecycle hygiene (double-destroy and
// use-after-destroy report CHASE_INVALID_HANDLE, never UB), invalid-argument
// paths, and the submit/poll/wait/cancel surface a C or Fortran client sees.
#include "capi/chase_c.h"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "gen/spectrum.hpp"

namespace {

using namespace chase;

TEST(CApiService, DefaultParams) {
  chase_service_params p;
  chase_service_default_params(&p);
  EXPECT_EQ(p.workers, 2);
  EXPECT_EQ(p.max_batch, 8);
  EXPECT_EQ(p.max_queue_depth, 256);
}

TEST(CApiService, LifecycleHygiene) {
  chase_service* svc = chase_service_create(nullptr);
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(chase_service_destroy(svc), CHASE_SUCCESS);
  // Double destroy and use-after-destroy are typed errors, not UB.
  EXPECT_EQ(chase_service_destroy(svc), CHASE_INVALID_HANDLE);
  EXPECT_EQ(chase_service_poll(svc, 1), CHASE_INVALID_HANDLE);
  EXPECT_EQ(chase_service_wait(svc, 1), CHASE_INVALID_HANDLE);
  EXPECT_EQ(chase_service_cancel(svc, 1), CHASE_INVALID_HANDLE);
  chase_params p;
  chase_default_params(4, &p);
  double w[4];
  EXPECT_EQ(chase_service_submit_d(svc, w, 4, &p, nullptr, 0, w, nullptr),
            CHASE_INVALID_HANDLE);
  // NULL was never a live handle either.
  EXPECT_EQ(chase_service_destroy(nullptr), CHASE_INVALID_HANDLE);
  EXPECT_EQ(chase_service_poll(nullptr, 1), CHASE_INVALID_HANDLE);
}

TEST(CApiService, InvalidCreateParams) {
  chase_service_params p;
  chase_service_default_params(&p);
  p.workers = 0;
  EXPECT_EQ(chase_service_create(&p), nullptr);
  chase_service_default_params(&p);
  p.max_queue_depth = -1;
  EXPECT_EQ(chase_service_create(&p), nullptr);
}

TEST(CApiService, InvalidSubmitArguments) {
  chase_service* svc = chase_service_create(nullptr);
  ASSERT_NE(svc, nullptr);
  const long n = 32;
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, 0.0, 2.0), 3);
  chase_params p;
  chase_default_params(4, &p);
  std::vector<double> w(4);

  EXPECT_EQ(chase_service_submit_d(svc, nullptr, n, &p, nullptr, 0, w.data(),
                                   nullptr),
            CHASE_INVALID_ARGUMENT);
  EXPECT_EQ(chase_service_submit_d(svc, h.data(), n, nullptr, nullptr, 0,
                                   w.data(), nullptr),
            CHASE_INVALID_ARGUMENT);
  EXPECT_EQ(chase_service_submit_d(svc, h.data(), n, &p, nullptr, 0, nullptr,
                                   nullptr),
            CHASE_INVALID_ARGUMENT);
  EXPECT_EQ(chase_service_submit_d(svc, h.data(), 0, &p, nullptr, 0, w.data(),
                                   nullptr),
            CHASE_INVALID_ARGUMENT);
  chase_params bad = p;
  bad.nev = 0;
  EXPECT_EQ(chase_service_submit_d(svc, h.data(), n, &bad, nullptr, 0,
                                   w.data(), nullptr),
            CHASE_INVALID_ARGUMENT);
  bad = p;
  bad.nev = 30;
  bad.nex = 8;  // subspace exceeds n
  EXPECT_EQ(chase_service_submit_d(svc, h.data(), n, &bad, nullptr, 0,
                                   w.data(), nullptr),
            CHASE_INVALID_ARGUMENT);

  EXPECT_EQ(chase_service_poll(svc, 12345), CHASE_UNKNOWN_JOB);
  EXPECT_EQ(chase_service_wait(svc, 12345), CHASE_UNKNOWN_JOB);
  EXPECT_EQ(chase_service_cancel(svc, 12345), CHASE_UNKNOWN_JOB);
  EXPECT_EQ(chase_service_destroy(svc), CHASE_SUCCESS);
}

TEST(CApiService, SubmitWaitMatchesDirectSolve) {
  chase_service* svc = chase_service_create(nullptr);
  ASSERT_NE(svc, nullptr);
  const long n = 64;
  const auto eigs = gen::uniform_spectrum<double>(n, -1.0, 3.0);
  auto hd = gen::hermitian_with_spectrum<double>(eigs, 21);
  auto hz = gen::hermitian_with_spectrum<std::complex<double>>(eigs, 22);

  chase_params p;
  chase_default_params(6, &p);
  std::vector<double> wd(6), wz(6);
  std::vector<double> zd(std::size_t(n) * 6);
  std::vector<std::complex<double>> zz(std::size_t(n) * 6);

  const long jd = chase_service_submit_d(svc, hd.data(), n, &p, "tenant-a",
                                         0, wd.data(), zd.data());
  const long jz = chase_service_submit_z(
      svc, reinterpret_cast<const double*>(hz.data()), n, &p, "tenant-b", 1,
      wz.data(), reinterpret_cast<double*>(zz.data()));
  ASSERT_GE(jd, 0);
  ASSERT_GE(jz, 0);

  EXPECT_EQ(chase_service_wait(svc, jd), CHASE_SUCCESS);
  EXPECT_EQ(chase_service_wait(svc, jz), CHASE_SUCCESS);
  // Waiting again re-reports the terminal state.
  EXPECT_EQ(chase_service_wait(svc, jd), CHASE_SUCCESS);

  // The service answers must be bitwise-equal to the one-shot entry points.
  std::vector<double> wd_ref(6), wz_ref(6);
  std::vector<double> zd_ref(std::size_t(n) * 6);
  std::vector<std::complex<double>> zz_ref(std::size_t(n) * 6);
  ASSERT_EQ(chase_dsyev_lowest(hd.data(), n, &p, wd_ref.data(),
                               zd_ref.data()),
            CHASE_SUCCESS);
  ASSERT_EQ(chase_zheev_lowest(reinterpret_cast<const double*>(hz.data()), n,
                               &p, wz_ref.data(),
                               reinterpret_cast<double*>(zz_ref.data())),
            CHASE_SUCCESS);
  EXPECT_EQ(wd, wd_ref);
  EXPECT_EQ(wz, wz_ref);
  EXPECT_EQ(zd, zd_ref);
  EXPECT_TRUE(std::equal(zz.begin(), zz.end(), zz_ref.begin()));
  EXPECT_EQ(chase_service_destroy(svc), CHASE_SUCCESS);
}

TEST(CApiService, QueueFullAndCancel) {
  chase_service_params sp;
  chase_service_default_params(&sp);
  sp.workers = 1;
  sp.max_queue_depth = 2;
  chase_service* svc = chase_service_create(&sp);
  ASSERT_NE(svc, nullptr);

  // A heavyweight head job occupies the single worker while the tiny jobs
  // behind it fill the bounded queue.
  const long big_n = 200;
  auto big = gen::hermitian_with_spectrum<double>(
      gen::dft_like_spectrum<double>(big_n, 31), 31);
  chase_params bp;
  chase_default_params(24, &bp);
  std::vector<double> bw(24);
  const long head = chase_service_submit_d(svc, big.data(), big_n, &bp,
                                           nullptr, 0, bw.data(), nullptr);
  ASSERT_GE(head, 0);

  const long n = 40;
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, 0.0, 2.0), 33);
  chase_params p;
  chase_default_params(5, &p);
  std::vector<double> w1(5), w2(5), w3(5);
  long queued[2] = {-1, -1};
  long full = CHASE_QUEUE_FULL;
  // The head job may finish while we enqueue; retry the whole backlog until
  // a submission observes the full queue (bounded by the big solve's time).
  for (int attempt = 0; attempt < 50 && full != -99; ++attempt) {
    queued[0] = chase_service_submit_d(svc, h.data(), n, &p, nullptr, 0,
                                       w1.data(), nullptr);
    queued[1] = chase_service_submit_d(svc, h.data(), n, &p, nullptr, 0,
                                       w2.data(), nullptr);
    if (queued[0] >= 0 && queued[1] >= 0) {
      full = chase_service_submit_d(svc, h.data(), n, &p, nullptr, 0,
                                    w3.data(), nullptr);
      break;
    }
  }
  if (queued[0] >= 0 && queued[1] >= 0) {
    // Oversubscription rejects typed (or the worker drained in between and
    // the submission landed; both are graceful, neither blocks nor crashes).
    EXPECT_TRUE(full == CHASE_QUEUE_FULL || full >= 0);
    // Cancel one queued job if it has not been dispatched yet.
    const int cancel_rc = chase_service_cancel(svc, queued[1]);
    EXPECT_TRUE(cancel_rc == CHASE_SUCCESS ||
                cancel_rc == CHASE_NOT_CANCELLABLE);
    if (cancel_rc == CHASE_SUCCESS) {
      EXPECT_EQ(chase_service_wait(svc, queued[1]), CHASE_JOB_CANCELLED);
    }
    EXPECT_EQ(chase_service_wait(svc, queued[0]), CHASE_SUCCESS);
    if (full >= 0) {
      EXPECT_EQ(chase_service_wait(svc, full), CHASE_SUCCESS);
    }
  }
  EXPECT_EQ(chase_service_wait(svc, head), CHASE_SUCCESS);
  EXPECT_EQ(chase_service_destroy(svc), CHASE_SUCCESS);
}

TEST(CApiService, NotConvergedIsReported) {
  chase_service* svc = chase_service_create(nullptr);
  ASSERT_NE(svc, nullptr);
  const long n = 48;
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, -1.0, 3.0), 41);
  chase_params p;
  chase_default_params(5, &p);
  p.tol = 1e-300;  // unreachable
  p.max_iterations = 2;
  std::vector<double> w(5);
  const long job = chase_service_submit_d(svc, h.data(), n, &p, nullptr, 0,
                                          w.data(), nullptr);
  ASSERT_GE(job, 0);
  EXPECT_EQ(chase_service_wait(svc, job), CHASE_NOT_CONVERGED);
  EXPECT_EQ(chase_service_destroy(svc), CHASE_SUCCESS);
}

}  // namespace
