// The C interface, exercised the way a Fortran/C electronic-structure code
// would call it: raw column-major buffers, interleaved complex doubles.
#include "capi/chase_c.h"

#include <gtest/gtest.h>

#include <complex>
#include <filesystem>
#include <fstream>
#include <vector>

#include "coll/engine.hpp"
#include "gen/spectrum.hpp"
#include "la/norms.hpp"
#include "tune/profile.hpp"

namespace {

using namespace chase;

TEST(CApi, DefaultParams) {
  chase_params p;
  chase_default_params(100, &p);
  EXPECT_EQ(p.nev, 100);
  EXPECT_EQ(p.nex, 25);
  EXPECT_DOUBLE_EQ(p.tol, 1e-10);
  EXPECT_EQ(p.optimize_degree, 1);
  chase_default_params(8, &p);
  EXPECT_EQ(p.nex, 4);  // floor
}

TEST(CApi, ZheevLowestMatchesPrescribedSpectrum) {
  const long n = 120;
  auto eigs = gen::uniform_spectrum<double>(n, -1.0, 3.0);
  auto h = gen::hermitian_with_spectrum<std::complex<double>>(eigs, 17);

  chase_params p;
  chase_default_params(10, &p);
  std::vector<double> w(10);
  std::vector<std::complex<double>> z(std::size_t(n) * 10);
  const int rc = chase_zheev_lowest(
      reinterpret_cast<const double*>(h.data()), n, &p, w.data(),
      reinterpret_cast<double*>(z.data()));
  ASSERT_EQ(rc, CHASE_SUCCESS);
  for (long j = 0; j < 10; ++j) {
    EXPECT_NEAR(w[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
  }
  // Eigenvectors satisfy H v = w v.
  for (long k = 0; k < 10; ++k) {
    double err = 0;
    for (long i = 0; i < n; ++i) {
      std::complex<double> acc = 0;
      for (long l = 0; l < n; ++l) acc += h(i, l) * z[std::size_t(k * n + l)];
      acc -= w[std::size_t(k)] * z[std::size_t(k * n + i)];
      err += std::norm(acc);
    }
    EXPECT_LE(std::sqrt(err), 1e-7);
  }
}

TEST(CApi, DsyevLowestRealPath) {
  const long n = 90;
  auto eigs = gen::uniform_spectrum<double>(n, 0.0, 5.0);
  auto h = gen::hermitian_with_spectrum<double>(eigs, 19);
  chase_params p;
  chase_default_params(6, &p);
  std::vector<double> w(6);
  const int rc = chase_dsyev_lowest(h.data(), n, &p, w.data(), nullptr);
  ASSERT_EQ(rc, CHASE_SUCCESS);
  for (long j = 0; j < 6; ++j) {
    EXPECT_NEAR(w[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
  }
}

TEST(CApi, InvalidArguments) {
  chase_params p;
  chase_default_params(5, &p);
  double w[5];
  EXPECT_EQ(chase_dsyev_lowest(nullptr, 10, &p, w, nullptr),
            CHASE_INVALID_ARGUMENT);
  std::vector<double> h(100, 0.0);
  EXPECT_EQ(chase_dsyev_lowest(h.data(), -3, &p, w, nullptr),
            CHASE_INVALID_ARGUMENT);
  p.nev = 0;
  EXPECT_EQ(chase_dsyev_lowest(h.data(), 10, &p, w, nullptr),
            CHASE_INVALID_ARGUMENT);
  p.nev = 9;
  p.nex = 9;  // subspace exceeds n
  EXPECT_EQ(chase_dsyev_lowest(h.data(), 10, &p, w, nullptr),
            CHASE_INVALID_ARGUMENT);
}

TEST(CApi, NotConvergedReportsApproximation) {
  const long n = 60;
  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, 0.0, 1.0), 21);
  chase_params p;
  chase_default_params(5, &p);
  p.tol = 1e-30;
  p.max_iterations = 2;
  std::vector<double> w(5);
  EXPECT_EQ(chase_dsyev_lowest(h.data(), n, &p, w.data(), nullptr),
            CHASE_NOT_CONVERGED);
  EXPECT_NEAR(w[0], 0.0, 1e-3);  // still a useful approximation
}

TEST(CApi, ProfileLoadValidatesAndInstalls) {
  EXPECT_EQ(chase_profile_load(nullptr), CHASE_INVALID_ARGUMENT);
  EXPECT_EQ(chase_profile_load(""), CHASE_INVALID_ARGUMENT);
  EXPECT_EQ(chase_profile_load("/nonexistent/profile.json"),
            CHASE_PROFILE_REJECTED);

  const auto path =
      std::filesystem::temp_directory_path() / "chase_capi_profile.json";
  {
    std::ofstream out(path);
    out << "{\"schema\": \"wrong.schema\", \"version\": 1}";
  }
  EXPECT_EQ(chase_profile_load(path.string().c_str()),
            CHASE_PROFILE_REJECTED);

  chase::tune::MachineProfile profile;
  profile.fingerprint = chase::tune::local_fingerprint();
  profile.tables.chunk_bytes = 128 << 10;
  ASSERT_TRUE(chase::tune::save_profile(profile, path.string()));
  EXPECT_EQ(chase_profile_load(path.string().c_str()), CHASE_SUCCESS);
  EXPECT_EQ(chase::coll::chunk_bytes(), std::size_t(128) << 10);
  chase_profile_unload();
  EXPECT_NE(chase::coll::chunk_bytes(), std::size_t(128) << 10);
  std::filesystem::remove(path);
}

}  // namespace
