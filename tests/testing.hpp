// Shared helpers for the test suite: random matrices, Hermitian generators,
// typed-test scalar lists and tolerance scaling per precision.
#pragma once

#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"
#include "la/gemm.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"

namespace chase::testing {

using ScalarTypes =
    ::testing::Types<float, double, std::complex<float>, std::complex<double>>;
using RealScalarTypes = ::testing::Types<float, double>;
using DoubleScalarTypes = ::testing::Types<double, std::complex<double>>;

/// Baseline tolerance: a small multiple of the scalar's epsilon.
template <typename T>
RealType<T> tol(RealType<T> factor = RealType<T>(100)) {
  return factor * std::numeric_limits<RealType<T>>::epsilon();
}

/// Dense m x n matrix with iid Gaussian entries.
template <typename T>
la::Matrix<T> random_matrix(la::Index m, la::Index n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> a(m, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < m; ++i) a(i, j) = rng.gaussian<T>();
  }
  return a;
}

/// Random Hermitian matrix: (G + G^H) / 2.
template <typename T>
la::Matrix<T> random_hermitian(la::Index n, std::uint64_t seed) {
  auto g = random_matrix<T>(n, n, seed);
  la::Matrix<T> a(n, n);
  for (la::Index j = 0; j < n; ++j) {
    for (la::Index i = 0; i < n; ++i) {
      a(i, j) = (g(i, j) + conjugate(g(j, i))) / RealType<T>(2);
    }
  }
  return a;
}

/// Reference (unblocked, triple-loop) gemm to validate the blocked kernel.
template <typename T>
void naive_gemm(T alpha, la::Op opa, la::ConstMatrixView<T> a, la::Op opb,
                la::ConstMatrixView<T> b, T beta, la::MatrixView<T> c) {
  using la::Index;
  const Index m = la::op_rows(opa, a);
  const Index k = la::op_cols(opa, a);
  const Index n = la::op_cols(opb, b);
  auto elem = [](la::Op op, la::ConstMatrixView<T> x, Index i, Index j) {
    if (op == la::Op::kNoTrans) return x(i, j);
    if (op == la::Op::kTrans) return x(j, i);
    return conjugate(x(j, i));
  };
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      T acc(0);
      for (Index l = 0; l < k; ++l) {
        acc += elem(opa, a, i, l) * elem(opb, b, l, j);
      }
      c(i, j) = alpha * acc + (beta == T(0) ? T(0) : beta * c(i, j));
    }
  }
}

}  // namespace chase::testing
