// Lifecycle, admission control, fairness, batching, and pool behavior of
// the solver service. Scheduling-order tests build their backlog on a
// paused service so the dispatch sequence is deterministic.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"

namespace {

using namespace chase;
using svc::JobState;
using svc::SvcError;

template <typename T>
la::Matrix<T> test_matrix(la::Index n, std::uint64_t seed) {
  return gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, -1.0, 3.0), seed);
}

core::ChaseConfig small_cfg(la::Index nev = 5, la::Index nex = 3) {
  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = nex;
  return cfg;
}

TEST(Service, SubmitWaitSolvesBothTypes) {
  svc::SolverService service;
  const la::Index n = 48;
  const auto eigs = gen::uniform_spectrum<double>(n, -1.0, 3.0);
  auto hd = gen::hermitian_with_spectrum<double>(eigs, 11);
  auto hz = gen::hermitian_with_spectrum<std::complex<double>>(eigs, 12);

  const auto sd = service.submit(hd.cview(), small_cfg());
  const auto sz = service.submit(hz.cview(), small_cfg());
  ASSERT_TRUE(sd.ok());
  ASSERT_TRUE(sz.ok());

  const auto id = service.wait(sd.id);
  const auto iz = service.wait(sz.id);
  EXPECT_EQ(id.state, JobState::kDone);
  EXPECT_EQ(iz.state, JobState::kDone);
  EXPECT_TRUE(id.converged);
  EXPECT_TRUE(iz.converged);

  const auto rd = service.result<double>(sd.id);
  const auto rz = service.result<std::complex<double>>(sz.id);
  ASSERT_NE(rd, nullptr);
  ASSERT_NE(rz, nullptr);
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(rd->eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
    EXPECT_NEAR(rz->eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-7);
  }
  // Type-mismatched result access yields an empty pointer, not UB.
  EXPECT_EQ(service.result<std::complex<double>>(sd.id), nullptr);
  EXPECT_EQ(service.counter("svc.jobs.completed"), 2.0);
  EXPECT_EQ(service.counter("svc.tenant.default.completed"), 2.0);
  EXPECT_EQ(service.counter("svc.jobs.admitted"), 2.0);
}

TEST(Service, AdmissionControlRejectsWhenFull) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 4;
  cfg.start_paused = true;
  svc::SolverService service(cfg);
  auto h = test_matrix<double>(40, 7);

  std::vector<svc::JobId> admitted;
  for (int i = 0; i < 4; ++i) {
    const auto sub = service.submit(h.cview(), small_cfg());
    ASSERT_TRUE(sub.ok());
    admitted.push_back(sub.id);
  }
  const auto rejected = service.submit(h.cview(), small_cfg());
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error, SvcError::kQueueFull);
  EXPECT_EQ(service.counter("svc.jobs.rejected"), 1.0);
  EXPECT_EQ(service.counter("svc.jobs.rejected.queue_full"), 1.0);

  service.resume();
  service.drain();
  for (const auto id : admitted) {
    EXPECT_EQ(service.poll(id), JobState::kDone);
  }
  // Depth freed up: admission works again.
  EXPECT_TRUE(service.submit(h.cview(), small_cfg()).ok());
}

TEST(Service, InvalidJobsRejectedTyped) {
  svc::SolverService service;
  auto h = test_matrix<double>(32, 3);

  auto cfg = small_cfg();
  cfg.nev = 0;  // no wanted pairs
  EXPECT_EQ(service.submit(h.cview(), cfg).error, SvcError::kInvalidJob);

  cfg = small_cfg(30, 8);  // subspace exceeds n
  EXPECT_EQ(service.submit(h.cview(), cfg).error, SvcError::kInvalidJob);

  EXPECT_EQ(service
                .submit(la::ConstMatrixView<double>(nullptr, 32, 32, 32),
                        small_cfg())
                .error,
            SvcError::kInvalidJob);

  EXPECT_EQ(service.counter("svc.jobs.rejected.invalid"), 3.0);

  service.shutdown();
  EXPECT_EQ(service.submit(h.cview(), small_cfg()).error,
            SvcError::kShutdown);
}

TEST(Service, CancelQueuedJob) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  svc::SolverService service(cfg);
  auto h = test_matrix<double>(40, 5);

  const auto first = service.submit(h.cview(), small_cfg());
  const auto second = service.submit(h.cview(), small_cfg());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(service.cancel(second.id), SvcError::kNone);
  EXPECT_EQ(service.poll(second.id), JobState::kCancelled);
  EXPECT_EQ(service.cancel(second.id), SvcError::kNotCancellable);
  EXPECT_EQ(service.cancel(9999), SvcError::kUnknownJob);

  service.resume();
  EXPECT_EQ(service.wait(first.id).state, JobState::kDone);
  EXPECT_EQ(service.cancel(first.id), SvcError::kNotCancellable);
  // The cancelled job never ran and holds no result.
  EXPECT_EQ(service.result<double>(second.id), nullptr);
  EXPECT_EQ(service.counter("svc.jobs.cancelled"), 1.0);
  EXPECT_EQ(service.wait(second.id).state, JobState::kCancelled);
}

TEST(Service, UnknownJobIsTyped) {
  svc::SolverService service;
  EXPECT_EQ(service.poll(42), JobState::kUnknown);
  const auto info = service.wait(42);
  EXPECT_EQ(info.state, JobState::kUnknown);
  EXPECT_EQ(info.error, SvcError::kUnknownJob);
}

TEST(Service, WeightedFairPickAcrossTenants) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;  // isolate the fair pick from batching
  cfg.start_paused = true;
  svc::SolverService service(cfg);
  service.set_tenant_weight("tenant-a", 2.0);
  service.set_tenant_weight("tenant-b", 1.0);
  auto h = test_matrix<double>(40, 9);

  std::vector<svc::JobId> a_jobs, b_jobs;
  for (int i = 0; i < 6; ++i) {
    svc::JobOptions opts;
    opts.tenant = "tenant-a";
    a_jobs.push_back(service.submit(h.cview(), small_cfg(), opts).id);
    opts.tenant = "tenant-b";
    b_jobs.push_back(service.submit(h.cview(), small_cfg(), opts).id);
  }
  service.resume();
  service.drain();

  // With weights 2:1 the first 9 dispatch slots split 6:3.
  int a_early = 0, b_early = 0;
  for (const auto id : a_jobs) {
    if (service.info(id).dispatch_seq < 9) ++a_early;
  }
  for (const auto id : b_jobs) {
    if (service.info(id).dispatch_seq < 9) ++b_early;
  }
  EXPECT_EQ(a_early, 6);
  EXPECT_EQ(b_early, 3);
  EXPECT_EQ(service.counter("svc.tenant.tenant-a.completed"), 6.0);
  EXPECT_EQ(service.counter("svc.tenant.tenant-b.completed"), 6.0);
}

TEST(Service, PriorityAndDeadlineOrderWithinTenant) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.start_paused = true;
  svc::SolverService service(cfg);
  auto h = test_matrix<double>(40, 13);

  svc::JobOptions opts;
  const auto low = service.submit(h.cview(), small_cfg(), opts);
  opts.priority = 5;
  const auto high_late = service.submit(h.cview(), small_cfg(), opts);
  opts.deadline_seconds = 0.5;
  const auto high_tight = service.submit(h.cview(), small_cfg(), opts);
  opts.deadline_seconds = 60.0;
  const auto high_loose = service.submit(h.cview(), small_cfg(), opts);

  service.resume();
  service.drain();

  // Priority first; within priority 5 the deadlines order tight < loose <
  // none; the priority-0 job runs last.
  EXPECT_EQ(service.info(high_tight.id).dispatch_seq, 0);
  EXPECT_EQ(service.info(high_loose.id).dispatch_seq, 1);
  EXPECT_EQ(service.info(high_late.id).dispatch_seq, 2);
  EXPECT_EQ(service.info(low.id).dispatch_seq, 3);
}

TEST(Service, SameSizeBatchingCoalesces) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.start_paused = true;
  svc::SolverService service(cfg);

  std::vector<la::Matrix<double>> small_jobs;
  for (int i = 0; i < 4; ++i) {
    small_jobs.push_back(test_matrix<double>(40, 20 + std::uint64_t(i)));
  }
  auto odd = test_matrix<double>(56, 30);

  std::vector<svc::JobId> ids;
  ids.push_back(service.submit(small_jobs[0].cview(), small_cfg()).id);
  ids.push_back(service.submit(odd.cview(), small_cfg(6, 4)).id);
  for (int i = 1; i < 4; ++i) {
    ids.push_back(service.submit(small_jobs[std::size_t(i)].cview(),
                                 small_cfg()).id);
  }
  service.resume();
  service.drain();

  // The four (40, 8)-bucket jobs ran as one dispatch of width 4 even though
  // a different-bucket job was interleaved in submission order.
  for (const auto id : {ids[0], ids[2], ids[3], ids[4]}) {
    EXPECT_EQ(service.info(id).batch_width, 4);
  }
  EXPECT_EQ(service.info(ids[1]).batch_width, 1);
  EXPECT_EQ(service.counter("svc.batch.count"), 2.0);
  EXPECT_EQ(service.counter("svc.batch.jobs"), 5.0);
}

TEST(Service, PoolReusesArenasAtZeroSteadyGrowth) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  svc::SolverService service(cfg);

  // 100 jobs over a mixed-size working set: two d buckets and one z bucket.
  auto d40 = test_matrix<double>(40, 41);
  auto d56 = test_matrix<double>(56, 42);
  auto z40 = test_matrix<std::complex<double>>(40, 43);

  std::vector<svc::JobId> ids;
  for (int i = 0; i < 100; ++i) {
    svc::Submission sub;
    switch (i % 3) {
      case 0:
        sub = service.submit(d40.cview(), small_cfg());
        break;
      case 1:
        sub = service.submit(d56.cview(), small_cfg(6, 4));
        break;
      default:
        sub = service.submit(z40.cview(), small_cfg());
        break;
    }
    ASSERT_TRUE(sub.ok());
    ids.push_back(sub.id);
  }
  service.drain();
  for (const auto id : ids) {
    EXPECT_EQ(service.poll(id), JobState::kDone);
  }
  // The whole run reuses a handful of arenas (2 workers x 3 buckets at
  // most) and no warm arena ever allocates: fleet-wide zero steady-state
  // allocation.
  EXPECT_LE(service.pool_entries(), 6);
  EXPECT_EQ(service.pool_steady_growth(), 0);
  EXPECT_EQ(service.counter("svc.pool.steady_arena_growth"), 0.0);
  EXPECT_EQ(service.counter("svc.jobs.completed"), 100.0);
  EXPECT_GT(service.counter("svc.pool.hits"),
            service.counter("svc.pool.misses"));
}

TEST(Service, SolveFailureIsTypedNotFatal) {
  svc::SolverService service;
  auto h = test_matrix<double>(32, 3);
  // A custom upper bound far below lambda_max makes the filter diverge;
  // the driver reports non-convergence instead of corrupting the service.
  auto cfg = small_cfg();
  cfg.use_custom_bounds = true;
  cfg.custom_b_sup = -100.0;
  cfg.custom_mu_1 = -101.0;
  cfg.custom_mu_ne = -100.5;
  const auto sub = service.submit(h.cview(), cfg);
  ASSERT_TRUE(sub.ok());
  const auto info = service.wait(sub.id);
  EXPECT_TRUE(info.state == JobState::kDone || info.state == JobState::kFailed);
  if (info.state == JobState::kDone) {
    EXPECT_FALSE(info.converged);
  } else {
    EXPECT_EQ(info.error, SvcError::kSolveFailed);
  }
  // The service stays healthy for the next job.
  const auto ok = service.submit(h.cview(), small_cfg());
  EXPECT_EQ(service.wait(ok.id).state, JobState::kDone);
}

TEST(Service, ShutdownCancelsQueuedJobs) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  svc::SolverService service(cfg);
  auto h = test_matrix<double>(40, 77);
  const auto sub = service.submit(h.cview(), small_cfg());
  ASSERT_TRUE(sub.ok());
  service.shutdown();
  const auto info = service.info(sub.id);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_EQ(info.error, SvcError::kShutdown);
  service.shutdown();  // idempotent
}

}  // namespace
