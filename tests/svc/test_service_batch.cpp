// Batched-vs-solo bitwise equivalence: every job run through the service —
// at any batch width, over warm pooled arenas — must produce eigenpairs
// bitwise identical to its standalone core::solve_sequential run. This is
// the property that makes the batching scheduler transparent: per-job RNG
// streams (ChaseConfig::seed) are preserved, and a value-cleared pooled
// arena is indistinguishable from a fresh one.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "svc/service.hpp"

namespace {

using namespace chase;

struct Bucket {
  la::Index n;
  la::Index nev;
  la::Index nex;
};

template <typename T>
void sweep_buckets() {
  for (const Bucket bucket : {Bucket{40, 5, 3}, Bucket{56, 6, 4}}) {
    for (const int width : {1, 2, 4}) {
      svc::ServiceConfig scfg;
      scfg.workers = 1;
      scfg.max_batch = width;
      scfg.start_paused = true;
      svc::SolverService service(scfg);

      core::ChaseConfig cfg;
      cfg.nev = bucket.nev;
      cfg.nex = bucket.nex;

      std::vector<la::Matrix<T>> problems;
      std::vector<core::ChaseConfig> cfgs;
      for (int i = 0; i < width; ++i) {
        problems.push_back(gen::hermitian_with_spectrum<T>(
            gen::uniform_spectrum<double>(bucket.n, -2.0, 4.0),
            100 + std::uint64_t(i)));
        cfgs.push_back(cfg);
        cfgs.back().seed = 3000 + std::uint64_t(i);  // per-job RNG stream
      }

      std::vector<svc::JobId> ids;
      for (int i = 0; i < width; ++i) {
        const auto sub = service.submit(problems[std::size_t(i)].cview(),
                                        cfgs[std::size_t(i)]);
        ASSERT_TRUE(sub.ok());
        ids.push_back(sub.id);
      }
      service.resume();
      service.drain();

      for (int i = 0; i < width; ++i) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << bucket.n << " width=" << width << " job="
                     << i);
        const auto info = service.wait(ids[std::size_t(i)]);
        ASSERT_EQ(info.state, svc::JobState::kDone);
        EXPECT_EQ(info.batch_width, width);
        const auto batched = service.result<T>(ids[std::size_t(i)]);
        ASSERT_NE(batched, nullptr);

        const auto solo = core::solve_sequential<T>(
            problems[std::size_t(i)].cview(), cfgs[std::size_t(i)]);
        ASSERT_EQ(solo.converged, batched->converged);
        ASSERT_EQ(solo.iterations, batched->iterations);
        ASSERT_EQ(solo.matvecs, batched->matvecs);
        ASSERT_EQ(solo.eigenvalues.size(), batched->eigenvalues.size());
        EXPECT_EQ(std::memcmp(solo.eigenvalues.data(),
                              batched->eigenvalues.data(),
                              solo.eigenvalues.size() *
                                  sizeof(solo.eigenvalues[0])),
                  0);
        ASSERT_EQ(solo.eigenvectors.rows(), batched->eigenvectors.rows());
        ASSERT_EQ(solo.eigenvectors.cols(), batched->eigenvectors.cols());
        EXPECT_EQ(std::memcmp(solo.eigenvectors.data(),
                              batched->eigenvectors.data(),
                              sizeof(T) *
                                  std::size_t(solo.eigenvectors.rows()) *
                                  std::size_t(solo.eigenvectors.cols())),
                  0);
      }
    }
  }
}

TEST(ServiceBatch, BitwiseEqualsSoloDouble) { sweep_buckets<double>(); }

TEST(ServiceBatch, BitwiseEqualsSoloComplex) {
  sweep_buckets<std::complex<double>>();
}

// Reusing one service (and its warm arena pool) across repeated submissions
// of the same problem must yield bitwise-identical results every time —
// pooled-arena state never leaks between jobs.
TEST(ServiceBatch, WarmArenaRunsAreReproducible) {
  const la::Index n = 48;
  auto h = gen::hermitian_with_spectrum<std::complex<double>>(
      gen::uniform_spectrum<double>(n, -1.0, 3.0), 7);
  core::ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 4;

  svc::ServiceConfig scfg;
  scfg.workers = 1;
  svc::SolverService service(scfg);

  std::shared_ptr<const core::ChaseResult<std::complex<double>>> first;
  for (int round = 0; round < 3; ++round) {
    const auto sub = service.submit(h.cview(), cfg);
    ASSERT_TRUE(sub.ok());
    service.wait(sub.id);
    const auto result = service.result<std::complex<double>>(sub.id);
    ASSERT_NE(result, nullptr);
    if (round == 0) {
      first = result;
      continue;
    }
    EXPECT_EQ(std::memcmp(first->eigenvalues.data(),
                          result->eigenvalues.data(),
                          first->eigenvalues.size() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(first->eigenvectors.data(),
                          result->eigenvectors.data(),
                          sizeof(std::complex<double>) * std::size_t(n) *
                              std::size_t(cfg.nev)),
              0);
  }
}

}  // namespace
