// Concurrency suite (runs under the tsan preset, label svc): shared-tracker
// counter mutation from many threads, concurrent submitters/pollers against
// one service, and oversubscription under contention rejecting typed
// instead of blocking or crashing.
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <thread>
#include <vector>

#include "gen/spectrum.hpp"
#include "perf/tracker.hpp"
#include "svc/service.hpp"

namespace {

using namespace chase;

TEST(ServiceConcurrency, SharedTrackerCountersAreThreadSafe) {
  perf::Tracker tracker;
  constexpr int kThreads = 4;
  constexpr int kBumps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker, t] {
      for (int i = 0; i < kBumps; ++i) {
        tracker.bump("svc.shared");            // all threads collide here
        tracker.bump(t % 2 == 0 ? "svc.even" : "svc.odd", 0.5);
        if (i % 128 == 0) {
          (void)tracker.counter("svc.shared");  // concurrent reads
          (void)tracker.counters();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(tracker.counter("svc.shared"), kThreads * kBumps);
  EXPECT_DOUBLE_EQ(tracker.counter("svc.even") + tracker.counter("svc.odd"),
                   kThreads * kBumps * 0.5);
}

TEST(ServiceConcurrency, ConcurrentSubmittersAndWaiters) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  svc::SolverService service(cfg);

  const la::Index n = 40;
  auto hd = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(n, -1.0, 3.0), 5);
  auto hz = gen::hermitian_with_spectrum<std::complex<double>>(
      gen::uniform_spectrum<double>(n, -1.0, 3.0), 6);
  core::ChaseConfig jcfg;
  jcfg.nev = 5;
  jcfg.nex = 3;

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 8;
  std::atomic<int> done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<svc::JobId> ids;
      for (int i = 0; i < kJobsPerClient; ++i) {
        svc::JobOptions opts;
        opts.tenant = c % 2 == 0 ? "alpha" : "beta";
        const auto sub = c % 2 == 0 ? service.submit(hd.cview(), jcfg, opts)
                                    : service.submit(hz.cview(), jcfg, opts);
        ASSERT_TRUE(sub.ok());
        ids.push_back(sub.id);
        (void)service.poll(sub.id);  // concurrent polling
        (void)service.counter("svc.jobs.admitted");
      }
      for (const auto id : ids) {
        const auto info = service.wait(id);
        EXPECT_EQ(info.state, svc::JobState::kDone);
        EXPECT_TRUE(info.converged);
        done.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(done.load(), kClients * kJobsPerClient);
  EXPECT_EQ(service.counter("svc.jobs.completed"),
            double(kClients * kJobsPerClient));
  EXPECT_EQ(service.pool_steady_growth(), 0);
}

TEST(ServiceConcurrency, OversubscriptionRejectsTypedUnderContention) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 8;
  cfg.start_paused = true;  // force every submission to queue
  svc::SolverService service(cfg);

  auto h = gen::hermitian_with_spectrum<double>(
      gen::uniform_spectrum<double>(40, -1.0, 3.0), 9);
  core::ChaseConfig jcfg;
  jcfg.nev = 5;
  jcfg.nex = 3;

  constexpr int kClients = 4;
  constexpr int kTries = 8;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kTries; ++i) {
        const auto sub = service.submit(h.cview(), jcfg);
        if (sub.ok()) {
          accepted.fetch_add(1);
        } else {
          EXPECT_EQ(sub.error, svc::SvcError::kQueueFull);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(accepted.load(), 8);  // exactly the queue depth, no overshoot
  EXPECT_EQ(rejected.load(), kClients * kTries - 8);

  service.resume();
  service.drain();
  EXPECT_EQ(service.counter("svc.jobs.completed"), 8.0);
}

}  // namespace
