// Fidelity tests of the cluster-scale replayers: the model must emit the
// same event stream (collective counts, payload bytes, flop counters,
// staging copies) as a real run of the same configuration.
#include "model/chase_model.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <map>

#include "coll/engine.hpp"
#include "comm/topology.hpp"
#include "core/legacy_lms.hpp"
#include "core/sequential.hpp"
#include "gen/spectrum.hpp"
#include "model/elpa_model.hpp"

namespace chase::model {
namespace {

using perf::Backend;
using perf::CollKind;
using perf::Region;
using perf::Tracker;

/// (region, kind) -> (count, total bytes) summary of a tracker's collectives.
std::map<std::pair<int, int>, std::pair<std::size_t, std::size_t>>
collective_summary(const Tracker& t, Region skip = Region::kLanczos) {
  std::map<std::pair<int, int>, std::pair<std::size_t, std::size_t>> out;
  for (const auto& ev : t.collectives()) {
    if (ev.region == skip) continue;
    auto& slot = out[{int(ev.region), int(ev.kind)}];
    slot.first += 1;
    slot.second += ev.bytes;
  }
  return out;
}

/// Runs one real no-opt ChASE iteration on a pxp grid and returns rank 0's
/// tracker.
template <typename T>
Tracker real_iteration_tracker(la::Index n, la::Index nev, la::Index nex,
                               int p, int degree, Backend backend,
                               bool lms) {
  auto h_full = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 1.0, 10.0), 31);
  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = nex;
  cfg.optimize_degree = false;
  cfg.initial_degree = degree;
  cfg.max_iterations = 1;
  cfg.tol = 1e-30;

  std::vector<Tracker> trackers(std::size_t(p) * std::size_t(p));
  comm::Team team(p * p, backend);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, p, p);
        auto map = dist::IndexMap::block(n, p);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h_full.cview());
        if (lms) {
          core::solve_lms(hd, cfg);
        } else {
          core::solve(hd, cfg);
        }
      },
      &trackers);
  return trackers[0];
}

ChaseModelSetup setup_for(la::Index n, la::Index nev, la::Index nex, int p,
                          Backend backend, Scheme scheme) {
  ChaseModelSetup s;
  s.n = n;
  s.nev = nev;
  s.nex = nex;
  s.complex_scalar = true;
  s.scalar_bytes = int(sizeof(std::complex<double>));
  s.nprow = s.npcol = p;
  s.backend = backend;
  s.scheme = scheme;
  return s;
}

class ModelFidelity : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(ModelFidelity, EventStreamMatchesRealRun) {
  using T = std::complex<double>;
  const auto [p, lms] = GetParam();
  const la::Index n = 64, nev = 8, nex = 6;
  const int degree = 10;
  const Backend backend = Backend::kStdGpu;

  auto real = real_iteration_tracker<T>(n, nev, nex, p, degree, backend, lms);

  auto s = setup_for(n, nev, nex, p, backend,
                     lms ? Scheme::kLms : Scheme::kNew);
  Tracker modeled;
  // The real driver ran CholeskyQR2 (first-iteration estimate is moderate)
  // unless it is the always-HHQR legacy scheme.
  replay_iteration(s, uniform_iteration(nev + nex, degree), modeled);
  modeled.flush();

  // Collective counts and bytes must agree region by region.
  EXPECT_EQ(collective_summary(real), collective_summary(modeled))
      << "p=" << p << " lms=" << lms;

  // Flop counters and staging bytes must agree per region.
  for (int r = int(Region::kFilter); r < perf::kRegionCount; ++r) {
    const auto& rc = real.costs(Region(r));
    const auto& mc = modeled.costs(Region(r));
    for (int c = 0; c < perf::kFlopClassCount; ++c) {
      EXPECT_NEAR(rc.flops[std::size_t(c)], mc.flops[std::size_t(c)],
                  1.0 + 1e-9 * rc.flops[std::size_t(c)])
          << "region " << r << " class " << c << " lms=" << lms;
    }
    EXPECT_EQ(rc.memcpy_bytes, mc.memcpy_bytes) << "region " << r;
    EXPECT_NEAR(rc.mem_bytes, mc.mem_bytes, 1.0) << "region " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, ModelFidelity,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(false, true)),
                         [](const auto& info) {
                           return std::string("p") +
                                  std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) ? "_lms" : "_new");
                         });

TEST(ModelFidelity, HierarchicalTopologyEventStreamMatches) {
  // Under a grouped CHASE_TOPO the real dispatcher routes the column-
  // communicator collectives through the two-level routines, which emit a
  // per-phase event decomposition instead of one flat event. The replay,
  // handed the same ranks_per_node, must reproduce that stream exactly: the
  // 4x4 grid over 2 nodes x 8 ranks gives rank 0's column communicator the
  // grouped shape {0,0,1,1} (two members per node, two nodes) while its row
  // communicator stays inside one node (flat).
  using T = std::complex<double>;
  const la::Index n = 64, nev = 8, nex = 6;
  const int p = 4, degree = 10;
  const Backend backend = Backend::kNcclGpu;
  comm::ScopedTopology topo(comm::parse_topology("CHASE_TOPO", "2x8"));
  coll::ScopedAlgorithm policy(coll::Algorithm::kHier);

  auto real =
      real_iteration_tracker<T>(n, nev, nex, p, degree, backend, false);

  auto s = setup_for(n, nev, nex, p, backend, Scheme::kNew);
  s.ranks_per_node = 8;
  Tracker modeled;
  replay_iteration(s, uniform_iteration(nev + nex, degree), modeled);
  modeled.flush();
  EXPECT_EQ(collective_summary(real), collective_summary(modeled));
}

TEST(ModelFidelity, TsqrVariantEventStreamMatches) {
  // The TSQR replay path must match a real force_tsqr run.
  using T = std::complex<double>;
  const la::Index n = 64, nev = 8, nex = 6;
  const int p = 2, degree = 10;
  auto h_full = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 1.0, 10.0), 31);
  core::ChaseConfig cfg;
  cfg.nev = nev;
  cfg.nex = nex;
  cfg.optimize_degree = false;
  cfg.initial_degree = degree;
  cfg.max_iterations = 1;
  cfg.tol = 1e-30;
  cfg.qr.force_tsqr = true;

  std::vector<Tracker> trackers(std::size_t(p) * std::size_t(p));
  comm::Team team(p * p, Backend::kNcclGpu);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, p, p);
        auto map = dist::IndexMap::block(n, p);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h_full.cview());
        core::solve(hd, cfg);
      },
      &trackers);

  auto s = setup_for(n, nev, nex, p, Backend::kNcclGpu, Scheme::kNew);
  Tracker modeled;
  replay_iteration(s, uniform_iteration(nev + nex, degree,
                                        qr::QrVariant::kTsqr),
                   modeled);
  modeled.flush();
  EXPECT_EQ(collective_summary(trackers[0]), collective_summary(modeled));
  for (int c = 0; c < perf::kFlopClassCount; ++c) {
    const auto& rc = trackers[0].costs(Region::kQr);
    const auto& mc = modeled.costs(Region::kQr);
    EXPECT_NEAR(rc.flops[std::size_t(c)], mc.flops[std::size_t(c)],
                1.0 + 1e-9 * rc.flops[std::size_t(c)])
        << "class " << c;
  }
}

TEST(ModelFidelity, LanczosEventStreamMatches) {
  using T = std::complex<double>;
  const la::Index n = 48;
  const int p = 2, steps = 10, nvec = 3;
  auto h_full = gen::hermitian_with_spectrum<T>(
      gen::uniform_spectrum<double>(n, 0.0, 5.0), 33);

  std::vector<Tracker> trackers(std::size_t(p) * std::size_t(p));
  comm::Team team(p * p, Backend::kNcclGpu);
  team.run(
      [&](comm::Communicator& world) {
        comm::Grid2d grid(world, p, p);
        auto map = dist::IndexMap::block(n, p);
        dist::DistHermitianMatrix<T> hd(grid, map, map);
        hd.fill_from_global(h_full.cview());
        core::lanczos_bounds(hd, 10, steps, nvec, 7);
      },
      &trackers);

  auto s = setup_for(n, 6, 4, p, Backend::kNcclGpu, Scheme::kNew);
  Tracker modeled;
  replay_lanczos(s, steps, nvec, modeled);
  modeled.flush();

  auto real_sum = collective_summary(trackers[0], Region::kOther);
  auto model_sum = collective_summary(modeled, Region::kOther);
  EXPECT_EQ(real_sum, model_sum);
}

TEST(ModelMemory, Eq2FootprintAndLmsComparison) {
  // Eq. (2) at the paper's weak-scaling endpoint: N = 900k, ne = 3000,
  // 30x30 grid of nodes => 60x60 rank grid.
  ChaseModelSetup s;
  s.n = 900000;
  s.nev = 2250;
  s.nex = 750;
  s.nprow = s.npcol = 60;
  const double gib = double(memory_bytes_new(s)) / (1 << 30);
  // H panel: (900k/60)^2 * 16B = 3.35 GiB; buffers ~ 2*2*15000*3000*16B.
  EXPECT_GT(gib, 3.0);
  EXPECT_LT(gib, 40.0);  // fits 40 GB A100 memory

  // The LMS footprint at the same scale has two full N x ne buffers:
  // 2 * 900k * 3000 * 16 B = 80 GiB >> 40 GB; this is why LMS stops at 144
  // nodes in Figure 3a.
  const double lms_gib = double(memory_bytes_lms(s)) / (1 << 30);
  EXPECT_GT(lms_gib, 80.0);
}

TEST(ModelChase, PricedCostsArePositiveAndBackendSensitive) {
  perf::MachineModel m;
  auto s = setup_for(30000, 2250, 750, 2, Backend::kNcclGpu, Scheme::kNew);
  auto it = uniform_iteration(3000, 20);
  const auto nccl = perf::sum_costs(model_chase(m, s, {it}));
  s.backend = Backend::kStdGpu;
  const auto std_ = perf::sum_costs(model_chase(m, s, {it}));
  EXPECT_GT(nccl.compute, 0.0);
  EXPECT_EQ(nccl.movement, 0.0);
  EXPECT_GT(std_.movement, 0.0);
  EXPECT_LT(nccl.comm + nccl.movement, std_.comm + std_.movement);
}

TEST(ModelElpa, StrongScalingSaturates) {
  perf::MachineModel m;
  ElpaModelSetup s;
  s.n = 115459;
  s.nev = 1200;
  s.stages = 2;
  s.nranks = 16;
  const double t16 = model_elpa(m, s).total();
  s.nranks = 576;
  const double t576 = model_elpa(m, s).total();
  EXPECT_GT(t16 / t576, 3.0);   // it does scale...
  EXPECT_LT(t16 / t576, 12.0);  // ...but far from the 36x rank ratio
}

TEST(ModelElpa, TwoStageBeatsOneStageAtModerateScale) {
  // The GEMM-rich band reduction gives ELPA2 the edge while the per-GPU
  // panel work dominates; at extreme scale its pipeline-bound bulge chase
  // erodes the advantage (the GPU-ELPA papers report the same crossover).
  perf::MachineModel m;
  ElpaModelSetup s;
  s.n = 115459;
  s.nev = 1200;
  s.nranks = 16;
  s.stages = 1;
  const double one16 = model_elpa(m, s).total();
  s.stages = 2;
  const double two16 = model_elpa(m, s).total();
  EXPECT_LT(two16, 0.7 * one16);
}

}  // namespace
}  // namespace chase::model
