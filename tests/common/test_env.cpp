// Validated parsing of the numeric CHASE_* environment knobs: garbage must
// become a typed ConfigError naming the variable, never a silent 0.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"

namespace chase::env {
namespace {

TEST(PositiveInt, ParsesPlainValues) {
  EXPECT_EQ(positive_int("X", "1"), 1);
  EXPECT_EQ(positive_int("X", "42"), 42);
  EXPECT_EQ(positive_int("X", "1048576"), 1048576);
  // strtoll semantics: leading whitespace and an explicit '+' are fine.
  EXPECT_EQ(positive_int("X", " 7"), 7);
  EXPECT_EQ(positive_int("X", "+7"), 7);
  // Trailing whitespace is tolerated (a quoted export often carries one).
  EXPECT_EQ(positive_int("X", "7 "), 7);
}

TEST(PositiveInt, RejectsZeroAndNegative) {
  EXPECT_THROW(positive_int("CHASE_CKPT_INTERVAL", "0"), ConfigError);
  EXPECT_THROW(positive_int("CHASE_CKPT_INTERVAL", "-3"), ConfigError);
}

TEST(PositiveInt, RejectsGarbage) {
  EXPECT_THROW(positive_int("X", "abc"), ConfigError);
  EXPECT_THROW(positive_int("X", "12abc"), ConfigError);   // trailing junk
  EXPECT_THROW(positive_int("X", "64kb"), ConfigError);    // the classic typo
  EXPECT_THROW(positive_int("X", "1.5"), ConfigError);
  EXPECT_THROW(positive_int("X", ""), ConfigError);
  EXPECT_THROW(positive_int("X", "  "), ConfigError);
}

TEST(PositiveInt, RejectsOverflow) {
  EXPECT_THROW(positive_int("X", "99999999999999999999999"), ConfigError);
}

TEST(PositiveInt, ErrorNamesVariableAndText) {
  try {
    positive_int("CHASE_COLL_CHUNK_BYTES", "64kb");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHASE_COLL_CHUNK_BYTES"), std::string::npos) << what;
    EXPECT_NE(what.find("64kb"), std::string::npos) << what;
  }
}

TEST(PositiveInt, IsAChaseError) {
  // The collective-safe propagation (poisoned barriers) catches
  // chase::Error; ConfigError must ride that path.
  EXPECT_THROW(positive_int("X", "bogus"), chase::Error);
}

TEST(PositiveEnv, UnsetAndEmptyAreNullopt) {
  ::unsetenv("CHASE_TEST_ENV_KNOB");
  EXPECT_FALSE(positive_env("CHASE_TEST_ENV_KNOB").has_value());
  ::setenv("CHASE_TEST_ENV_KNOB", "", 1);
  EXPECT_FALSE(positive_env("CHASE_TEST_ENV_KNOB").has_value());
  ::unsetenv("CHASE_TEST_ENV_KNOB");
}

TEST(PositiveEnv, SetValueParses) {
  ::setenv("CHASE_TEST_ENV_KNOB", "65536", 1);
  auto v = positive_env("CHASE_TEST_ENV_KNOB");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 65536);
  ::unsetenv("CHASE_TEST_ENV_KNOB");
}

TEST(PositiveEnv, SetGarbageThrows) {
  ::setenv("CHASE_TEST_ENV_KNOB", "soon", 1);
  EXPECT_THROW(positive_env("CHASE_TEST_ENV_KNOB"), ConfigError);
  ::setenv("CHASE_TEST_ENV_KNOB", "0", 1);
  EXPECT_THROW(positive_env("CHASE_TEST_ENV_KNOB"), ConfigError);
  ::unsetenv("CHASE_TEST_ENV_KNOB");
}

}  // namespace
}  // namespace chase::env
