// Validated parsing of the numeric CHASE_* environment knobs: garbage must
// become a typed ConfigError naming the variable, never a silent 0.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"

namespace chase::env {
namespace {

TEST(PositiveInt, ParsesPlainValues) {
  EXPECT_EQ(positive_int("X", "1"), 1);
  EXPECT_EQ(positive_int("X", "42"), 42);
  EXPECT_EQ(positive_int("X", "1048576"), 1048576);
  // strtoll semantics: leading whitespace and an explicit '+' are fine.
  EXPECT_EQ(positive_int("X", " 7"), 7);
  EXPECT_EQ(positive_int("X", "+7"), 7);
  // Trailing whitespace is tolerated (a quoted export often carries one).
  EXPECT_EQ(positive_int("X", "7 "), 7);
}

TEST(PositiveInt, RejectsZeroAndNegative) {
  EXPECT_THROW(positive_int("CHASE_CKPT_INTERVAL", "0"), ConfigError);
  EXPECT_THROW(positive_int("CHASE_CKPT_INTERVAL", "-3"), ConfigError);
}

TEST(PositiveInt, RejectsGarbage) {
  EXPECT_THROW(positive_int("X", "abc"), ConfigError);
  EXPECT_THROW(positive_int("X", "12abc"), ConfigError);   // trailing junk
  EXPECT_THROW(positive_int("X", "64kb"), ConfigError);    // the classic typo
  EXPECT_THROW(positive_int("X", "1.5"), ConfigError);
  EXPECT_THROW(positive_int("X", ""), ConfigError);
  EXPECT_THROW(positive_int("X", "  "), ConfigError);
}

TEST(PositiveInt, RejectsOverflow) {
  EXPECT_THROW(positive_int("X", "99999999999999999999999"), ConfigError);
}

TEST(PositiveInt, ErrorNamesVariableAndText) {
  try {
    positive_int("CHASE_COLL_CHUNK_BYTES", "64kb");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHASE_COLL_CHUNK_BYTES"), std::string::npos) << what;
    EXPECT_NE(what.find("64kb"), std::string::npos) << what;
  }
}

TEST(PositiveInt, IsAChaseError) {
  // The collective-safe propagation (poisoned barriers) catches
  // chase::Error; ConfigError must ride that path.
  EXPECT_THROW(positive_int("X", "bogus"), chase::Error);
}

TEST(PositiveEnv, UnsetAndEmptyAreNullopt) {
  ::unsetenv("CHASE_TEST_ENV_KNOB");
  EXPECT_FALSE(positive_env("CHASE_TEST_ENV_KNOB").has_value());
  ::setenv("CHASE_TEST_ENV_KNOB", "", 1);
  EXPECT_FALSE(positive_env("CHASE_TEST_ENV_KNOB").has_value());
  ::unsetenv("CHASE_TEST_ENV_KNOB");
}

TEST(PositiveEnv, SetValueParses) {
  ::setenv("CHASE_TEST_ENV_KNOB", "65536", 1);
  auto v = positive_env("CHASE_TEST_ENV_KNOB");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 65536);
  ::unsetenv("CHASE_TEST_ENV_KNOB");
}

TEST(PositiveEnv, SetGarbageThrows) {
  ::setenv("CHASE_TEST_ENV_KNOB", "soon", 1);
  EXPECT_THROW(positive_env("CHASE_TEST_ENV_KNOB"), ConfigError);
  ::setenv("CHASE_TEST_ENV_KNOB", "0", 1);
  EXPECT_THROW(positive_env("CHASE_TEST_ENV_KNOB"), ConfigError);
  ::unsetenv("CHASE_TEST_ENV_KNOB");
}

TEST(TextEnv, UnsetEmptyAndWhitespaceAreNullopt) {
  ::unsetenv("CHASE_TEST_ENV_TEXT");
  EXPECT_FALSE(text_env("CHASE_TEST_ENV_TEXT").has_value());
  ::setenv("CHASE_TEST_ENV_TEXT", "", 1);
  EXPECT_FALSE(text_env("CHASE_TEST_ENV_TEXT").has_value());
  ::setenv("CHASE_TEST_ENV_TEXT", "   ", 1);
  EXPECT_FALSE(text_env("CHASE_TEST_ENV_TEXT").has_value());
  ::unsetenv("CHASE_TEST_ENV_TEXT");
}

TEST(TextEnv, TrimsSurroundingWhitespace) {
  ::setenv("CHASE_TEST_ENV_TEXT", "  2x4@inter_us=30 ", 1);
  auto v = text_env("CHASE_TEST_ENV_TEXT");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "2x4@inter_us=30");
  ::unsetenv("CHASE_TEST_ENV_TEXT");
}

TEST(SplitList, SplitsAndTrimsTokens) {
  const auto toks = split_list(" a , b,c ", ',');
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[1], "b");
  EXPECT_EQ(toks[2], "c");
}

TEST(SplitList, PreservesEmptyTokens) {
  // ",," must yield three empties so spec parsers can reject the malformed
  // entry by name instead of silently skipping it.
  const auto toks = split_list(",,");
  ASSERT_EQ(toks.size(), 3u);
  for (const auto& t : toks) EXPECT_TRUE(t.empty());
}

TEST(SplitList, AlternateSeparator) {
  const auto toks = split_list("2x4@inter_mbps=800@inter_us=30", '@');
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "2x4");
  EXPECT_EQ(toks[2], "inter_us=30");
}

TEST(RangedInt, AcceptsBoundsInclusive) {
  EXPECT_EQ(ranged_int("X", "0", 0, 8), 0);
  EXPECT_EQ(ranged_int("X", "8", 0, 8), 8);
  EXPECT_EQ(ranged_int("X", "-4", -8, 8), -4);
}

TEST(RangedInt, RejectsOutOfRangeAndGarbage) {
  EXPECT_THROW(ranged_int("X", "9", 0, 8), ConfigError);
  EXPECT_THROW(ranged_int("X", "-1", 0, 8), ConfigError);
  EXPECT_THROW(ranged_int("X", "", 0, 8), ConfigError);
  EXPECT_THROW(ranged_int("X", "2x", 0, 8), ConfigError);
  EXPECT_THROW(ranged_int("X", "fast", 0, 8), ConfigError);
}

TEST(RangedInt, ErrorNamesVariableTokenAndRange) {
  try {
    ranged_int("CHASE_TOPO", "4097", 0, 4096);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHASE_TOPO"), std::string::npos) << what;
    EXPECT_NE(what.find("4097"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace chase::env
