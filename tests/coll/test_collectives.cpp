// Property suite for the src/coll algorithmic collective engine.
//
// The contract under test: every algorithm (ring / tree / auto policies over
// the chunk channels) produces *bitwise identical* results to the naive
// publish-and-sync reference, across team sizes, payload sizes (including 0
// and non-chunk-aligned counts), real and complex scalars, and chunk sizes
// small enough to force multi-chunk pipelines. Plus: nonblocking requests,
// the all_gather_v edge cases, the p2p fault-injection sites, and a
// tsan-targeted concurrent-teams stress test.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <thread>
#include <vector>

#include "coll/engine.hpp"
#include "comm/communicator.hpp"
#include "common/rng.hpp"
#include "dist/dist_matrix.hpp"
#include "perf/tracker.hpp"

namespace chase {
namespace {

using comm::Communicator;
using comm::Reduction;
using comm::Team;
using la::Index;

constexpr int kTeamSizes[] = {1, 2, 3, 4, 5, 8};
constexpr Index kCounts[] = {0, 1, 7, 64, 1023};
constexpr coll::Algorithm kPolicies[] = {
    coll::Algorithm::kNaive, coll::Algorithm::kRing, coll::Algorithm::kTree,
    coll::Algorithm::kAuto};

template <typename T>
std::vector<T> rank_payload(int rank, Index count, std::uint64_t salt) {
  Rng rng(salt, std::uint64_t(rank) + 1);
  std::vector<T> out((std::size_t(count)));
  for (auto& v : out) v = rng.gaussian<T>();
  return out;
}

template <typename T>
bool bitwise_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Sequential rank-ordered reference — the exact arithmetic the naive
/// all_reduce performs, computed without any communicator.
template <typename T>
std::vector<T> reference_allreduce(int p, Index count, Reduction op,
                                   std::uint64_t salt) {
  std::vector<T> acc = rank_payload<T>(0, count, salt);
  for (int r = 1; r < p; ++r) {
    const std::vector<T> x = rank_payload<T>(r, count, salt);
    for (Index i = 0; i < count; ++i) {
      comm::detail::reduce_assign(op, acc[std::size_t(i)], x[std::size_t(i)]);
    }
  }
  return acc;
}

template <typename T>
void sweep_allreduce() {
  for (const coll::Algorithm algo : kPolicies) {
    coll::ScopedAlgorithm policy(algo);
    // 48 bytes forces multi-chunk pipelines at the larger counts; the
    // default exercises the single-chunk fast path.
    for (const std::size_t chunk : {std::size_t(48), std::size_t(64) << 10}) {
      coll::ScopedChunkBytes chunk_scope(chunk);
      for (const int p : kTeamSizes) {
        for (const Index count : kCounts) {
          const std::uint64_t salt =
              std::uint64_t(p) * 1000003u + std::uint64_t(count);
          const std::vector<T> want =
              reference_allreduce<T>(p, count, Reduction::kSum, salt);
          std::vector<std::vector<T>> got((std::size_t(p)));
          Team team(p);
          team.run([&](Communicator& comm) {
            std::vector<T> x = rank_payload<T>(comm.rank(), count, salt);
            comm.all_reduce(x.data(), count);
            got[std::size_t(comm.rank())] = std::move(x);
          });
          for (int r = 0; r < p; ++r) {
            EXPECT_TRUE(bitwise_equal(got[std::size_t(r)], want))
                << "allreduce algo=" << coll::algorithm_name(algo)
                << " chunk=" << chunk << " p=" << p << " count=" << count
                << " rank=" << r;
          }
        }
      }
    }
  }
}

TEST(CollSweep, AllReduceBitwiseReal) { sweep_allreduce<double>(); }
TEST(CollSweep, AllReduceBitwiseComplex) {
  sweep_allreduce<std::complex<double>>();
}

TEST(CollSweep, AllReduceMaxMin) {
  for (const coll::Algorithm algo : kPolicies) {
    coll::ScopedAlgorithm policy(algo);
    coll::ScopedChunkBytes chunk_scope(48);
    for (const int p : {3, 8}) {
      for (const Reduction op : {Reduction::kMax, Reduction::kMin}) {
        const std::uint64_t salt = 77;
        const Index count = 129;
        const std::vector<double> want =
            reference_allreduce<double>(p, count, op, salt);
        Team team(p);
        team.run([&](Communicator& comm) {
          std::vector<double> x =
              rank_payload<double>(comm.rank(), count, salt);
          comm.all_reduce(x.data(), count, op);
          EXPECT_TRUE(bitwise_equal(x, want))
              << coll::algorithm_name(algo) << " p=" << p;
        });
      }
    }
  }
}

template <typename T>
void sweep_allgather() {
  for (const coll::Algorithm algo : kPolicies) {
    coll::ScopedAlgorithm policy(algo);
    for (const std::size_t chunk : {std::size_t(48), std::size_t(64) << 10}) {
      coll::ScopedChunkBytes chunk_scope(chunk);
      for (const int p : kTeamSizes) {
        for (const Index count : kCounts) {
          const std::uint64_t salt =
              std::uint64_t(p) * 911u + std::uint64_t(count);
          std::vector<T> want;
          for (int r = 0; r < p; ++r) {
            const auto x = rank_payload<T>(r, count, salt);
            want.insert(want.end(), x.begin(), x.end());
          }
          Team team(p);
          team.run([&](Communicator& comm) {
            const std::vector<T> x =
                rank_payload<T>(comm.rank(), count, salt);
            std::vector<T> recv(std::size_t(p) * std::size_t(count), T(42));
            comm.all_gather(x.data(), count, recv.data());
            EXPECT_TRUE(bitwise_equal(recv, want))
                << "allgather algo=" << coll::algorithm_name(algo)
                << " chunk=" << chunk << " p=" << p << " count=" << count
                << " rank=" << comm.rank();
          });
        }
      }
    }
  }
}

TEST(CollSweep, AllGatherBitwiseReal) { sweep_allgather<double>(); }
TEST(CollSweep, AllGatherBitwiseComplex) {
  sweep_allgather<std::complex<double>>();
}

template <typename T>
void sweep_broadcast() {
  for (const coll::Algorithm algo : kPolicies) {
    coll::ScopedAlgorithm policy(algo);
    for (const std::size_t chunk : {std::size_t(48), std::size_t(64) << 10}) {
      coll::ScopedChunkBytes chunk_scope(chunk);
      for (const int p : kTeamSizes) {
        for (const Index count : kCounts) {
          for (const int root : {0, p - 1}) {
            const std::uint64_t salt =
                std::uint64_t(p) * 131u + std::uint64_t(count);
            const std::vector<T> want = rank_payload<T>(root, count, salt);
            Team team(p);
            team.run([&](Communicator& comm) {
              std::vector<T> x =
                  rank_payload<T>(comm.rank(), count, salt);
              comm.broadcast(x.data(), count, root);
              EXPECT_TRUE(bitwise_equal(x, want))
                  << "broadcast algo=" << coll::algorithm_name(algo)
                  << " chunk=" << chunk << " p=" << p << " count=" << count
                  << " root=" << root << " rank=" << comm.rank();
            });
          }
        }
      }
    }
  }
}

TEST(CollSweep, BroadcastBitwiseReal) { sweep_broadcast<double>(); }
TEST(CollSweep, BroadcastBitwiseComplex) {
  sweep_broadcast<std::complex<double>>();
}

TEST(CollSweep, AllGatherVVariedCountsAndHoles) {
  for (const coll::Algorithm algo : kPolicies) {
    coll::ScopedAlgorithm policy(algo);
    coll::ScopedChunkBytes chunk_scope(48);
    for (const int p : {1, 3, 5, 8}) {
      // Mixed zero/nonzero counts plus a one-element hole between ranges:
      // rank r contributes r+1 elements if r is even, nothing otherwise.
      std::vector<Index> counts((std::size_t(p)));
      std::vector<Index> displs((std::size_t(p)));
      Index off = 0;
      for (int r = 0; r < p; ++r) {
        counts[std::size_t(r)] = r % 2 == 0 ? Index(r) + 1 : 0;
        displs[std::size_t(r)] = off;
        off += counts[std::size_t(r)] + 1;  // hole stays untouched
      }
      const Index total = off;
      std::vector<double> want(std::size_t(total), -7.0);
      for (int r = 0; r < p; ++r) {
        const auto x = rank_payload<double>(r, counts[std::size_t(r)], 5);
        std::copy(x.begin(), x.end(),
                  want.begin() + std::ptrdiff_t(displs[std::size_t(r)]));
      }
      Team team(p);
      team.run([&](Communicator& comm) {
        const Index mine = counts[std::size_t(comm.rank())];
        const auto x = rank_payload<double>(comm.rank(), mine, 5);
        std::vector<double> recv(std::size_t(total), -7.0);
        // Zero-count ranks may legally pass a null send buffer.
        comm.all_gather_v(mine > 0 ? x.data() : nullptr, mine, recv.data(),
                          counts, displs);
        EXPECT_TRUE(bitwise_equal(recv, want))
            << "allgatherv algo=" << coll::algorithm_name(algo) << " p=" << p
            << " rank=" << comm.rank();
      });
    }
  }
}

TEST(CollEdge, AllGatherVOverlappingDisplsRejected) {
  for (const coll::Algorithm algo :
       {coll::Algorithm::kNaive, coll::Algorithm::kRing}) {
    coll::ScopedAlgorithm policy(algo);
    Team team(3);
    try {
      team.run([&](Communicator& comm) {
        const std::vector<Index> counts = {2, 2, 2};
        const std::vector<Index> displs = {0, 1, 4};  // rank 1 overlaps rank 0
        std::vector<double> x = {1.0, 2.0};
        std::vector<double> recv(6, 0.0);
        comm.all_gather_v(x.data(), 2, recv.data(), counts, displs);
      });
      FAIL() << "overlapping displs must poison the team";
    } catch (const comm::TeamAborted& e) {
      EXPECT_EQ(e.error().site, "allgatherv.overlap");
    }
  }
}

TEST(CollNonblocking, OutstandingRequestsCompleteBitwise) {
  for (const coll::Algorithm algo :
       {coll::Algorithm::kRing, coll::Algorithm::kTree,
        coll::Algorithm::kAuto}) {
    coll::ScopedAlgorithm policy(algo);
    coll::ScopedChunkBytes chunk_scope(64);
    const int p = 4;
    const Index count = 257;
    const auto want_a = reference_allreduce<double>(p, count, Reduction::kSum, 1);
    const auto want_b = reference_allreduce<double>(p, count, Reduction::kSum, 2);
    Team team(p);
    team.run([&](Communicator& comm) {
      std::vector<double> a = rank_payload<double>(comm.rank(), count, 1);
      std::vector<double> b = rank_payload<double>(comm.rank(), count, 2);
      std::vector<double> gsend = rank_payload<double>(comm.rank(), count, 3);
      std::vector<double> gathered(std::size_t(p) * std::size_t(count));
      // Three outstanding requests, completed out of issue order.
      auto ra = comm.i_all_reduce(a.data(), count);
      auto rb = comm.i_all_reduce(b.data(), count);
      auto rg = comm.i_all_gather(gsend.data(), count, gathered.data());
      while (!rb.test()) std::this_thread::yield();
      rg.wait();
      ra.wait();
      EXPECT_TRUE(bitwise_equal(a, want_a)) << coll::algorithm_name(algo);
      EXPECT_TRUE(bitwise_equal(b, want_b)) << coll::algorithm_name(algo);
      for (int r = 0; r < p; ++r) {
        const auto x = rank_payload<double>(r, count, 3);
        EXPECT_EQ(0, std::memcmp(gathered.data() + Index(r) * count, x.data(),
                                 std::size_t(count) * sizeof(double)));
      }
    });
  }
}

TEST(CollIntegration, DistApplyBitwiseAcrossPoliciesAndOverlapEngages) {
  const Index n = 70;
  const Index ncols = 9;
  auto element = [](Index i, Index j) {
    const double v = 1.0 / double(1 + std::abs(int(i - j)));
    return i <= j ? v : v;  // symmetric
  };
  std::vector<std::vector<std::vector<double>>> outs;  // [policy][rank]
  double overlap_blocks = 0;
  for (const coll::Algorithm algo : kPolicies) {
    coll::ScopedAlgorithm policy(algo);
    const int p = 4;
    std::vector<perf::Tracker> trackers((std::size_t(p)));
    std::vector<std::vector<double>> got((std::size_t(p)));
    Team team(p);
    team.run(
        [&](Communicator& comm) {
          comm::Grid2d grid(comm, 2, 2);
          dist::IndexMap rmap = dist::IndexMap::block(n, grid.nprow());
          dist::IndexMap cmap = dist::IndexMap::block(n, grid.npcol());
          dist::DistHermitianMatrix<double> h(grid, rmap, cmap);
          h.fill(element);
          const Index xr = rmap.local_size(grid.my_row());
          const Index yr = cmap.local_size(grid.my_col());
          la::Matrix<double> x(xr, ncols), y(yr, ncols);
          for (Index j = 0; j < ncols; ++j) {
            for (Index i = 0; i < xr; ++i) {
              x(i, j) = element(i + 13 * j, j + 1);
            }
          }
          h.apply_c2b(1.0, x.view().as_const(), 0.0, y.view());
          std::vector<double> flat(std::size_t(yr) * std::size_t(ncols));
          std::copy_n(y.data(), flat.size(), flat.data());
          got[std::size_t(comm.rank())] = std::move(flat);
        },
        &trackers);
    if (algo == coll::Algorithm::kAuto) {
      for (const auto& t : trackers) {
        overlap_blocks += t.counter("coll.overlap.blocks");
      }
    }
    outs.push_back(std::move(got));
  }
  for (std::size_t a = 1; a < outs.size(); ++a) {
    for (std::size_t r = 0; r < outs[a].size(); ++r) {
      EXPECT_TRUE(bitwise_equal(outs[a][r], outs[0][r]))
          << "policy " << coll::algorithm_name(kPolicies[a]) << " rank " << r;
    }
  }
  // The auto policy must actually have run the overlap pipeline.
  EXPECT_GT(overlap_blocks, 0.0);
}

TEST(CollFault, P2pCorruptPropagatesNaN) {
  coll::ScopedAlgorithm policy(coll::Algorithm::kRing);
  coll::ScopedChunkBytes chunk_scope(std::size_t(64) << 10);
  fault::Scoped site("p2p.corrupt", /*rank=*/0, /*times=*/1);
  const int p = 4;
  Team team(p);
  team.run([&](Communicator& comm) {
    std::vector<double> x(33, double(comm.rank() + 1));
    comm.all_reduce(x.data(), Index(x.size()));
    // Rank 0's first reduce-chain chunk was corrupted in flight with 0xFF
    // bytes (a NaN), which the rank-ordered chain folds into every rank's
    // leading element.
    EXPECT_TRUE(std::isnan(x[0])) << "rank " << comm.rank();
  });
}

TEST(CollFault, P2pStallTripsWatchdog) {
  coll::ScopedAlgorithm policy(coll::Algorithm::kRing);
  comm::ScopedBarrierTimeout timeout(std::chrono::milliseconds(200));
  fault::Scoped site("p2p.stall", /*rank=*/1, /*times=*/1);
  Team team(3);
  try {
    team.run([&](Communicator& comm) {
      std::vector<double> x(17, double(comm.rank()));
      comm.all_reduce(x.data(), Index(x.size()));
    });
    FAIL() << "a stalled sender must poison the team";
  } catch (const comm::TeamAborted& e) {
    EXPECT_EQ(e.error().site, "p2p.watchdog") << e.what();
  }
}

TEST(CollFault, RankDieOnChannelPathAborts) {
  coll::ScopedAlgorithm policy(coll::Algorithm::kTree);
  fault::Scoped site("rank.die", /*rank=*/1, /*times=*/1);
  Team team(4);
  try {
    team.run([&](Communicator& comm) {
      std::vector<double> x(65, 1.0);
      comm.all_reduce(x.data(), Index(x.size()));
    });
    FAIL() << "injected rank death must abort the team";
  } catch (const comm::TeamAborted& e) {
    EXPECT_EQ(e.error().rank, 1);
    EXPECT_EQ(e.error().site, "rank.die");
  }
}

// tsan target: several teams of threads hammer the chunk channels, split
// communicators and nonblocking requests concurrently. Any missing
// synchronization in Mailbox/CommState shows up here under
// -fsanitize=thread (ctest -L coll on the tsan preset).
TEST(CollStress, ConcurrentTeams) {
  coll::ScopedAlgorithm policy(coll::Algorithm::kAuto);
  coll::ScopedChunkBytes chunk_scope(64);
  const int nteams = 4;
  std::vector<std::thread> drivers;
  drivers.reserve(nteams);
  for (int d = 0; d < nteams; ++d) {
    drivers.emplace_back([d] {
      const int p = 2 + d % 3;
      Team team(p);
      team.run([&](Communicator& comm) {
        for (int iter = 0; iter < 20; ++iter) {
          const Index count = 1 + 17 * ((iter + d) % 5);
          std::vector<double> x(std::size_t(count),
                                double(comm.rank() + iter));
          comm.all_reduce(x.data(), count);
          std::vector<double> g(std::size_t(comm.size()) *
                                std::size_t(count));
          auto req = comm.i_all_gather(x.data(), count, g.data());
          std::vector<double> b((std::size_t(count)), double(iter));
          comm.broadcast(b.data(), count, iter % comm.size());
          req.wait();
          Communicator half = comm.split(comm.rank() % 2, comm.rank());
          double v = double(comm.rank());
          half.all_reduce(&v, 1);
        }
      });
    });
  }
  for (auto& t : drivers) t.join();
}

}  // namespace
}  // namespace chase
