// Property suite for the two-level (topology-grouped) collective stack.
//
// Under test: the grouped sub-communicators a CHASE_TOPO assignment hangs
// off split() (Communicator::hier_group), the hierarchical routines staying
// bitwise-identical to the naive reference across node shapes x algorithms
// x scalar types, CollPlan registration/replay reproducing the ad-hoc
// dispatch results (with the coll.plan.* counters), and a leader-rank death
// propagating TeamAborted through both communicator levels.
#include <gtest/gtest.h>

#include <chrono>
#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "coll/engine.hpp"
#include "comm/communicator.hpp"
#include "coll/plan.hpp"
#include "comm/topology.hpp"
#include "common/faultinject.hpp"
#include "common/rng.hpp"
#include "perf/tracker.hpp"

namespace chase {
namespace {

using comm::Communicator;
using comm::Reduction;
using comm::Team;
using la::Index;

constexpr auto kTestTimeout = std::chrono::milliseconds(2000);
constexpr int kRanks = 8;

// Node shapes of an 8-rank team: flat, balanced groupings both ways, and an
// uneven 3 + 5 split.
const char* const kShapes[] = {"1x8", "2x4", "4x2", "0,0,0,1,1,1,1,1"};

const coll::Algorithm kHierPolicies[] = {coll::Algorithm::kHier,
                                         coll::Algorithm::kAuto};

comm::Topology shape(const char* spec) {
  return comm::parse_topology("CHASE_TOPO", spec);
}

template <typename T>
std::vector<T> rank_payload(int rank, Index count, std::uint64_t salt) {
  Rng rng(salt, std::uint64_t(rank) + 1);
  std::vector<T> out((std::size_t(count)));
  for (auto& v : out) v = rng.gaussian<T>();
  return out;
}

template <typename T>
bool bitwise_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Rank-ordered fold — the exact arithmetic the naive all_reduce performs.
template <typename T>
std::vector<T> reference_allreduce(int p, Index count, Reduction op,
                                   std::uint64_t salt) {
  std::vector<T> acc = rank_payload<T>(0, count, salt);
  for (int r = 1; r < p; ++r) {
    const std::vector<T> x = rank_payload<T>(r, count, salt);
    for (Index i = 0; i < count; ++i) {
      comm::detail::reduce_assign(op, acc[std::size_t(i)], x[std::size_t(i)]);
    }
  }
  return acc;
}

template <typename T>
void sweep_hier_allreduce() {
  for (const char* spec : kShapes) {
    comm::ScopedTopology topo(shape(spec));
    for (const coll::Algorithm algo : kHierPolicies) {
      coll::ScopedAlgorithm policy(algo);
      for (const std::size_t chunk : {std::size_t(48), std::size_t(64) << 10}) {
        coll::ScopedChunkBytes chunk_scope(chunk);
        for (const Index count : {Index(0), Index(1), Index(7), Index(1023)}) {
          const std::uint64_t salt =
              std::uint64_t(count) * 131u + std::uint64_t(chunk % 97);
          const std::vector<T> want =
              reference_allreduce<T>(kRanks, count, Reduction::kSum, salt);
          std::vector<std::vector<T>> got((std::size_t(kRanks)));
          Team team(kRanks);
          team.run([&](Communicator& comm) {
            std::vector<T> x = rank_payload<T>(comm.rank(), count, salt);
            comm.all_reduce(x.data(), count);
            got[std::size_t(comm.rank())] = std::move(x);
          });
          for (int r = 0; r < kRanks; ++r) {
            EXPECT_TRUE(bitwise_equal(got[std::size_t(r)], want))
                << "topo=" << spec << " algo=" << coll::algorithm_name(algo)
                << " chunk=" << chunk << " count=" << count << " rank=" << r;
          }
        }
      }
    }
  }
}

TEST(HierSweep, AllReduceBitwiseReal) { sweep_hier_allreduce<double>(); }
TEST(HierSweep, AllReduceBitwiseComplex) {
  sweep_hier_allreduce<std::complex<double>>();
}

template <typename T>
void sweep_hier_broadcast_gather() {
  for (const char* spec : kShapes) {
    comm::ScopedTopology topo(shape(spec));
    for (const coll::Algorithm algo : kHierPolicies) {
      coll::ScopedAlgorithm policy(algo);
      coll::ScopedChunkBytes chunk_scope(48);  // force multi-chunk pipelines
      for (const Index count : {Index(1), Index(65), Index(257)}) {
        for (const int root : {0, 3, kRanks - 1}) {
          const std::uint64_t salt = std::uint64_t(count) * 7u + root;
          const std::vector<T> want = rank_payload<T>(root, count, salt);
          Team team(kRanks);
          team.run([&](Communicator& comm) {
            std::vector<T> x = rank_payload<T>(comm.rank(), count, salt);
            comm.broadcast(x.data(), count, root);
            EXPECT_TRUE(bitwise_equal(x, want))
                << "broadcast topo=" << spec << " root=" << root
                << " count=" << count << " rank=" << comm.rank();
          });
        }
        // Uniform allgather.
        {
          const std::uint64_t salt = std::uint64_t(count) + 999u;
          std::vector<T> want;
          for (int r = 0; r < kRanks; ++r) {
            const auto mine = rank_payload<T>(r, count, salt);
            want.insert(want.end(), mine.begin(), mine.end());
          }
          Team team(kRanks);
          team.run([&](Communicator& comm) {
            const auto mine = rank_payload<T>(comm.rank(), count, salt);
            std::vector<T> all(std::size_t(count) * kRanks);
            comm.all_gather(mine.data(), count, all.data());
            EXPECT_TRUE(bitwise_equal(all, want))
                << "allgather topo=" << spec << " count=" << count
                << " rank=" << comm.rank();
          });
        }
        // Variable-count allgather with the canonical contiguous layout
        // (the shape the hierarchical composite accepts).
        {
          std::vector<Index> counts(kRanks);
          std::vector<Index> displs(kRanks);
          Index total = 0;
          for (int r = 0; r < kRanks; ++r) {
            counts[std::size_t(r)] = count + Index(r % 3);
            displs[std::size_t(r)] = total;
            total += counts[std::size_t(r)];
          }
          const std::uint64_t salt = std::uint64_t(count) + 4242u;
          std::vector<T> want(static_cast<std::size_t>(total));
          for (int r = 0; r < kRanks; ++r) {
            const auto mine =
                rank_payload<T>(r, counts[std::size_t(r)], salt);
            std::copy(mine.begin(), mine.end(),
                      want.begin() + std::size_t(displs[std::size_t(r)]));
          }
          Team team(kRanks);
          team.run([&](Communicator& comm) {
            const Index mine_n = counts[std::size_t(comm.rank())];
            const auto mine = rank_payload<T>(comm.rank(), mine_n, salt);
            std::vector<T> all(static_cast<std::size_t>(total));
            comm.all_gather_v(mine.data(), mine_n, all.data(), counts,
                              displs);
            EXPECT_TRUE(bitwise_equal(all, want))
                << "allgather_v topo=" << spec << " count=" << count
                << " rank=" << comm.rank();
          });
        }
      }
    }
  }
}

TEST(HierSweep, BroadcastAndGatherBitwiseReal) {
  sweep_hier_broadcast_gather<double>();
}
TEST(HierSweep, BroadcastAndGatherBitwiseComplex) {
  sweep_hier_broadcast_gather<std::complex<double>>();
}

TEST(HierGroup, SubCommunicatorShapes) {
  comm::ScopedTopology topo(shape("2x4"));
  Team team(kRanks);
  team.run([&](Communicator& comm) {
    const int r = comm.rank();
    ASSERT_TRUE(comm.topo_info().grouped());
    EXPECT_EQ(comm.topo_info().nodes, 2);
    EXPECT_EQ(comm.topo_info().max_per_node, 4);
    const auto& g = comm.hier_group();
    EXPECT_EQ(g.node, r / 4);
    EXPECT_EQ(g.node_first, (r / 4) * 4);
    EXPECT_EQ(g.node_size, 4);
    EXPECT_EQ(g.intra.size(), 4);
    EXPECT_EQ(g.intra.rank(), r % 4);
    EXPECT_EQ(g.is_leader, r % 4 == 3);
    if (g.is_leader) {
      EXPECT_EQ(g.leaders.size(), 2);
      EXPECT_EQ(g.leaders.rank(), r / 4);
    }
    // The sub-communicators are real communicators: collectives on them
    // must work and stay independent of the parent.
    double x = double(r + 1);
    g.intra.all_reduce(&x, 1);
    double want = 0;
    for (int i = 0; i < 4; ++i) want += double((r / 4) * 4 + i + 1);
    EXPECT_EQ(x, want);
  });
}

TEST(HierGroup, UnevenShapeAndSplitInheritance) {
  comm::ScopedTopology topo(shape("0,0,0,1,1,1,1,1"));
  coll::ScopedAlgorithm policy(coll::Algorithm::kHier);
  Team team(kRanks);
  team.run([&](Communicator& comm) {
    const int r = comm.rank();
    const auto& g = comm.hier_group();
    EXPECT_EQ(g.node, r < 3 ? 0 : 1);
    EXPECT_EQ(g.node_size, r < 3 ? 3 : 5);
    EXPECT_EQ(g.is_leader, r == 2 || r == 7);
    // A split child inherits the node assignment of its members: the even
    // ranks {0, 2, 4, 6} live on nodes {0, 0, 1, 1} — still grouped.
    Communicator half = comm.split(r % 2, r);
    const auto& info = half.topo_info();
    if (r % 2 == 0) {
      EXPECT_TRUE(info.grouped());
      EXPECT_EQ(info.nodes, 2);
      EXPECT_EQ(info.max_per_node, 2);
    }
    // Collectives on the grouped child still match the naive fold.
    double x = double(r + 1);
    half.all_reduce(&x, 1);
    double want = 0;
    for (int i = r % 2; i < kRanks; i += 2) want += double(i + 1);
    EXPECT_EQ(x, want);
  });
}

template <typename T>
void plan_replay_roundtrip() {
  comm::ScopedTopology topo(shape("2x4"));
  coll::ScopedAlgorithm policy(coll::Algorithm::kAuto);
  coll::ScopedChunkBytes chunk_scope(96);
  const Index count = 201;
  constexpr int kReplays = 3;
  std::vector<perf::Tracker> trackers(static_cast<std::size_t>(kRanks));
  Team team(kRanks);
  team.run(
      [&](Communicator& comm) {
        const int r = comm.rank();
        std::vector<T> x(static_cast<std::size_t>(count));
        std::vector<T> mine(static_cast<std::size_t>(count));
        std::vector<T> all(std::size_t(count) * kRanks);
        coll::CollPlan plan;
        plan.add_all_reduce(comm, x.data(), count);
        plan.add_broadcast(comm, x.data(), count, /*root=*/5);
        plan.add_all_gather(comm, mine.data(), count, all.data());
        ASSERT_EQ(plan.size(), 3u);
        for (int it = 0; it < kReplays; ++it) {
          const std::uint64_t salt = std::uint64_t(it) * 7919u + 13u;
          // Replays see fresh buffer contents each iteration.
          auto px = rank_payload<T>(r, count, salt);
          std::copy(px.begin(), px.end(), x.begin());
          plan.run(0);
          EXPECT_TRUE(bitwise_equal(
              x, reference_allreduce<T>(kRanks, count, Reduction::kSum,
                                        salt)))
              << "replay " << it << " rank " << r;
          auto pb = rank_payload<T>(r, count, salt + 1);
          std::copy(pb.begin(), pb.end(), x.begin());
          plan.run(1);
          EXPECT_TRUE(bitwise_equal(x, rank_payload<T>(5, count, salt + 1)))
              << "replay " << it << " rank " << r;
          auto pm = rank_payload<T>(r, count, salt + 2);
          std::copy(pm.begin(), pm.end(), mine.begin());
          plan.run(2);
          std::vector<T> want;
          for (int q = 0; q < kRanks; ++q) {
            const auto part = rank_payload<T>(q, count, salt + 2);
            want.insert(want.end(), part.begin(), part.end());
          }
          EXPECT_TRUE(bitwise_equal(all, want))
              << "replay " << it << " rank " << r;
        }
      },
      &trackers);
  EXPECT_EQ(trackers[0].counter("coll.plan.builds"), 3.0);
  EXPECT_EQ(trackers[0].counter("coll.plan.replays"), 3.0 * kReplays);
}

TEST(CollPlan, ReplayMatchesDispatchReal) { plan_replay_roundtrip<double>(); }
TEST(CollPlan, ReplayMatchesDispatchComplex) {
  plan_replay_roundtrip<std::complex<double>>();
}

TEST(CollPlan, NonblockingStartMatchesBlockingRun) {
  comm::ScopedTopology topo(shape("2x4"));
  coll::ScopedAlgorithm policy(coll::Algorithm::kRing);
  const Index count = 129;
  Team team(kRanks);
  team.run([&](Communicator& comm) {
    std::vector<double> x(static_cast<std::size_t>(count));
    coll::CollPlan plan;
    plan.add_all_reduce(comm, x.data(), count);
    ASSERT_TRUE(plan.async_capable(0));
    for (int it = 0; it < 2; ++it) {
      const std::uint64_t salt = 555u + std::uint64_t(it);
      auto px = rank_payload<double>(comm.rank(), count, salt);
      std::copy(px.begin(), px.end(), x.begin());
      coll::CollRequest req = plan.start(0);
      req.wait();
      EXPECT_TRUE(bitwise_equal(
          x, reference_allreduce<double>(kRanks, count, Reduction::kSum,
                                         salt)));
    }
  });
}

TEST(HierFault, LeaderDeathPropagatesThroughBothLevels) {
  // Rank 7 is the leader of node 1 under 2x4: it dies entering the
  // hierarchical collective, and every rank of both levels (its intra-node
  // teammates and the cross-node leader exchange) must unblock with
  // TeamAborted instead of hanging.
  comm::ScopedBarrierTimeout fast(kTestTimeout);
  comm::ScopedTopology topo(shape("2x4"));
  coll::ScopedAlgorithm policy(coll::Algorithm::kHier);
  fault::Scoped armed("rank.die", /*rank=*/7, /*times=*/1);
  Team team(kRanks);
  try {
    team.run([](Communicator& comm) {
      std::vector<double> x(64, double(comm.rank()));
      comm.all_reduce(x.data(), Index(x.size()));
      comm.barrier();
    });
    FAIL() << "expected TeamAborted";
  } catch (const comm::TeamAborted& e) {
    EXPECT_EQ(e.error().rank, 7);
    EXPECT_EQ(e.error().site, "rank.die");
  }
}

TEST(HierFault, PlanReplayDeathAborts) {
  // Replays run the fault-injection hook too: a rank dying on the Nth
  // replay of a registered plan aborts the team instead of deadlocking the
  // other replayers.
  comm::ScopedBarrierTimeout fast(kTestTimeout);
  comm::ScopedTopology topo(shape("2x4"));
  coll::ScopedAlgorithm policy(coll::Algorithm::kAuto);
  fault::Scoped armed("rank.die", /*rank=*/3, /*times=*/1);
  Team team(kRanks);
  EXPECT_THROW(
      team.run([](Communicator& comm) {
        std::vector<double> x(32, 1.0);
        coll::CollPlan plan;
        plan.add_all_reduce(comm, x.data(), Index(x.size()));
        for (int it = 0; it < 3; ++it) plan.run(0);
      }),
      comm::TeamAborted);
}

}  // namespace
}  // namespace chase
