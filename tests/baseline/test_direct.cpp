#include "baseline/direct.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "baseline/band_reduction.hpp"
#include "gen/spectrum.hpp"
#include "core/sequential.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::baseline {
namespace {

using chase::testing::random_hermitian;

template <typename T>
class BaselineTyped : public ::testing::Test {};
TYPED_TEST_SUITE(BaselineTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(BaselineTyped, BandReductionPreservesSpectrumAndBandwidth) {
  using T = TypeParam;
  const Index n = 40;
  auto a = random_hermitian<T>(n, 1);
  for (Index band : {1, 3, 8}) {
    auto work = la::clone(a.cview());
    la::Matrix<T> q(n, n);
    la::set_identity(q.view());
    reduce_to_band(work.view(), band, q.view());

    EXPECT_LE(semibandwidth(work.view().as_const(), 1e-10), band)
        << "band=" << band;
    EXPECT_LE(la::orthogonality_error(q.view().as_const()), 1e-12);

    // Q Aband Q^H must reconstruct A.
    la::Matrix<T> t1(n, n), rec(n, n);
    la::gemm(T(1), q.view().as_const(), work.view().as_const(), T(0),
             t1.view());
    la::gemm(T(1), la::Op::kNoTrans, t1.cview(), la::Op::kConjTrans,
             q.view().as_const(), T(0), rec.view());
    EXPECT_LE(la::max_abs_diff(rec.cview(), a.cview()), 1e-11)
        << "band=" << band;
    // The banded matrix must stay Hermitian.
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < j; ++i) {
        EXPECT_LE(abs_value(T(work(i, j) - conjugate(work(j, i)))), 1e-11);
      }
    }
  }
}

TYPED_TEST(BaselineTyped, BandOneMatchesTridiagonalization) {
  using T = TypeParam;
  const Index n = 24;
  auto a = random_hermitian<T>(n, 2);
  auto work = la::clone(a.cview());
  la::Matrix<T> q(n, n);
  la::set_identity(q.view());
  reduce_to_band(work.view(), 1, q.view());
  EXPECT_LE(semibandwidth(work.view().as_const(), 1e-10), 1);
}

TYPED_TEST(BaselineTyped, TwoStageMatchesOneStage) {
  using T = TypeParam;
  const Index n = 50;
  auto a = random_hermitian<T>(n, 3);

  auto w1 = la::clone(a.cview());
  std::vector<double> ev1;
  la::Matrix<T> z1(n, n);
  heev_one_stage(w1.view(), ev1, z1.view());

  auto w2 = la::clone(a.cview());
  std::vector<double> ev2;
  la::Matrix<T> z2(n, n);
  heev_two_stage(w2.view(), 6, ev2, z2.view());

  for (Index j = 0; j < n; ++j) {
    EXPECT_NEAR(ev1[std::size_t(j)], ev2[std::size_t(j)], 1e-10);
  }
  EXPECT_LE(la::orthogonality_error(z2.view().as_const()), 1e-11);
  // Two-stage eigenvectors must satisfy the eigen equation.
  la::Matrix<T> av(n, n);
  la::gemm(T(1), a.cview(), z2.view().as_const(), T(0), av.view());
  for (Index j = 0; j < n; ++j) {
    double acc = 0;
    for (Index i = 0; i < n; ++i) {
      const T d = av(i, j) - T(ev2[std::size_t(j)]) * z2(i, j);
      acc += double(real_part(conjugate(d) * d));
    }
    EXPECT_LE(std::sqrt(acc), 1e-9) << "pair " << j;
  }
}

TYPED_TEST(BaselineTyped, SolveLowestRecoversPrescribedEigenvalues) {
  using T = TypeParam;
  const Index n = 64;
  auto eigs = gen::uniform_spectrum<double>(n, -5.0, 12.0);
  auto a = gen::hermitian_with_spectrum<T>(eigs, 4);
  for (int stages : {1, 2}) {
    auto r = solve_lowest<T>(a.cview(), 7, stages, 5);
    ASSERT_EQ(r.eigenvalues.size(), 7u);
    for (Index j = 0; j < 7; ++j) {
      EXPECT_NEAR(r.eigenvalues[std::size_t(j)], eigs[std::size_t(j)], 1e-9)
          << "stages=" << stages;
    }
  }
}

TEST(Baseline, BandWiderThanMatrixIsNoop) {
  using T = double;
  const Index n = 10;
  auto a = random_hermitian<T>(n, 5);
  auto work = la::clone(a.cview());
  la::Matrix<T> q(n, n);
  la::set_identity(q.view());
  reduce_to_band(work.view(), n, q.view());
  EXPECT_EQ(la::max_abs_diff(work.cview(), a.cview()), 0.0);
}

TEST(Baseline, DirectAgreesWithChaseOnLowestPairs) {
  // Cross-validation of the two independent solver stacks.
  using T = std::complex<double>;
  const Index n = 80;
  auto a = gen::hermitian_with_spectrum<T>(
      gen::bse_like_spectrum<double>(n, 6), 6);
  auto direct = solve_lowest<T>(a.cview(), 6, 2, 8);

  core::ChaseConfig cfg;
  cfg.nev = 6;
  cfg.nex = 6;
  cfg.tol = 1e-10;
  auto iterative = core::solve_sequential<T>(a.cview(), cfg);
  ASSERT_TRUE(iterative.converged);
  for (Index j = 0; j < 6; ++j) {
    EXPECT_NEAR(direct.eigenvalues[std::size_t(j)],
                iterative.eigenvalues[std::size_t(j)], 1e-8);
  }
}

}  // namespace
}  // namespace chase::baseline
