#include "baseline/bulge_chasing.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "baseline/band_reduction.hpp"
#include "baseline/direct.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "tests/testing.hpp"

namespace chase::baseline {
namespace {

using chase::testing::random_hermitian;
using la::Index;

/// Builds a random Hermitian matrix of exact semibandwidth `band`.
template <typename T>
la::Matrix<T> random_banded(Index n, Index band, std::uint64_t seed) {
  auto full = random_hermitian<T>(n, seed);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      if (std::abs(i - j) > band) full(i, j) = T(0);
    }
  }
  return full;
}

template <typename T>
class BulgeTyped : public ::testing::Test {};
TYPED_TEST_SUITE(BulgeTyped, chase::testing::DoubleScalarTypes);

TYPED_TEST(BulgeTyped, ReducesBandToTridiagonalWithUnitaryQ) {
  using T = TypeParam;
  const Index n = 36;
  for (Index band : {2, 4, 7}) {
    auto a0 = random_banded<T>(n, band, 1 + std::uint64_t(band));
    auto a = la::clone(a0.cview());
    la::Matrix<T> q(n, n);
    la::set_identity(q.view());
    band_to_tridiag(a.view(), band, q.view());

    EXPECT_LE(semibandwidth(a.view().as_const(), 1e-11), 1) << "band=" << band;
    EXPECT_LE(la::orthogonality_error(q.view().as_const()), 1e-12);

    // Q T Q^H must reconstruct the banded input.
    la::Matrix<T> t1(n, n), rec(n, n);
    la::gemm(T(1), q.view().as_const(), a.view().as_const(), T(0), t1.view());
    la::gemm(T(1), la::Op::kNoTrans, t1.cview(), la::Op::kConjTrans,
             q.view().as_const(), T(0), rec.view());
    EXPECT_LE(la::max_abs_diff(rec.cview(), a0.cview()), 1e-11)
        << "band=" << band;
  }
}

TYPED_TEST(BulgeTyped, PhaseSimilarityYieldsRealTridiagonal) {
  using T = TypeParam;
  const Index n = 28, band = 3;
  auto a0 = random_banded<T>(n, band, 9);
  auto a = la::clone(a0.cview());
  la::Matrix<T> q(n, n);
  la::set_identity(q.view());
  band_to_tridiag(a.view(), band, q.view());
  std::vector<double> d, e;
  tridiag_make_real(a.view().as_const(), q.view(), d, e);

  // Q stays unitary after the phase scaling; Q T_real Q^H == A0.
  EXPECT_LE(la::orthogonality_error(q.view().as_const()), 1e-12);
  la::Matrix<T> t(n, n);
  for (Index i = 0; i < n; ++i) {
    t(i, i) = T(d[std::size_t(i)]);
    if (i + 1 < n) {
      t(i + 1, i) = T(e[std::size_t(i)]);
      t(i, i + 1) = T(e[std::size_t(i)]);
    }
  }
  la::Matrix<T> t1(n, n), rec(n, n);
  la::gemm(T(1), q.view().as_const(), t.cview(), T(0), t1.view());
  la::gemm(T(1), la::Op::kNoTrans, t1.cview(), la::Op::kConjTrans,
           q.view().as_const(), T(0), rec.view());
  EXPECT_LE(la::max_abs_diff(rec.cview(), a0.cview()), 1e-11);
  // All subdiagonals non-negative real.
  for (double x : e) EXPECT_GE(x, 0.0);
}

TYPED_TEST(BulgeTyped, BandOneIsNoop) {
  using T = TypeParam;
  const Index n = 12;
  auto a0 = random_banded<T>(n, 1, 13);
  auto a = la::clone(a0.cview());
  la::Matrix<T> q(n, n);
  la::set_identity(q.view());
  band_to_tridiag(a.view(), 1, q.view());
  EXPECT_EQ(la::max_abs_diff(a.cview(), a0.cview()), 0.0);
}

TYPED_TEST(BulgeTyped, FullTwoStagePipelineMatchesOneStage) {
  // full -> band (Householder) -> tridiag (bulge chasing) -> eigenvalues,
  // compared against the direct one-stage path on the same dense matrix.
  using T = TypeParam;
  const Index n = 48;
  auto a = random_hermitian<T>(n, 17);

  auto w1 = la::clone(a.cview());
  std::vector<double> ev1;
  la::Matrix<T> z1(n, n);
  la::heevd(w1.view(), ev1, z1.view());

  for (Index band : {3, 8}) {
    auto w2 = la::clone(a.cview());
    std::vector<double> ev2;
    la::Matrix<T> z2(n, n);
    heev_two_stage(w2.view(), band, ev2, z2.view());
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(ev2[std::size_t(i)], ev1[std::size_t(i)], 1e-10)
          << "band=" << band;
    }
    EXPECT_LE(la::orthogonality_error(z2.view().as_const()), 1e-11);
  }
}

}  // namespace
}  // namespace chase::baseline
