# CMake generated Testfile for 
# Source directory: /root/repo/tests/capi
# Build directory: /root/repo/build/tests/capi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/capi/test_chase_c[1]_include.cmake")
