file(REMOVE_RECURSE
  "CMakeFiles/test_chase_c.dir/test_chase_c.cpp.o"
  "CMakeFiles/test_chase_c.dir/test_chase_c.cpp.o.d"
  "test_chase_c"
  "test_chase_c.pdb"
  "test_chase_c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
