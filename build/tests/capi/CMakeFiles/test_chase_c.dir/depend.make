# Empty dependencies file for test_chase_c.
# This may be replaced when dependencies are built.
