# Empty dependencies file for test_chase_model.
# This may be replaced when dependencies are built.
