file(REMOVE_RECURSE
  "CMakeFiles/test_chase_model.dir/test_chase_model.cpp.o"
  "CMakeFiles/test_chase_model.dir/test_chase_model.cpp.o.d"
  "test_chase_model"
  "test_chase_model.pdb"
  "test_chase_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
