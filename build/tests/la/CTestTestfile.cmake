# CMake generated Testfile for 
# Source directory: /root/repo/tests/la
# Build directory: /root/repo/build/tests/la
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/la/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/la/test_blas[1]_include.cmake")
include("/root/repo/build/tests/la/test_factorizations[1]_include.cmake")
include("/root/repo/build/tests/la/test_heevd[1]_include.cmake")
include("/root/repo/build/tests/la/test_svd[1]_include.cmake")
include("/root/repo/build/tests/la/test_qr_blocked[1]_include.cmake")
include("/root/repo/build/tests/la/test_io[1]_include.cmake")
include("/root/repo/build/tests/la/test_stedc[1]_include.cmake")
include("/root/repo/build/tests/la/test_stebz[1]_include.cmake")
