# Empty compiler generated dependencies file for test_factorizations.
# This may be replaced when dependencies are built.
