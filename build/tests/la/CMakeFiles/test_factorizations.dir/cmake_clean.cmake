file(REMOVE_RECURSE
  "CMakeFiles/test_factorizations.dir/test_factorizations.cpp.o"
  "CMakeFiles/test_factorizations.dir/test_factorizations.cpp.o.d"
  "test_factorizations"
  "test_factorizations.pdb"
  "test_factorizations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factorizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
