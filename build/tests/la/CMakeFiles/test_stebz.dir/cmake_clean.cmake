file(REMOVE_RECURSE
  "CMakeFiles/test_stebz.dir/test_stebz.cpp.o"
  "CMakeFiles/test_stebz.dir/test_stebz.cpp.o.d"
  "test_stebz"
  "test_stebz.pdb"
  "test_stebz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stebz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
