# Empty compiler generated dependencies file for test_stebz.
# This may be replaced when dependencies are built.
