file(REMOVE_RECURSE
  "CMakeFiles/test_heevd.dir/test_heevd.cpp.o"
  "CMakeFiles/test_heevd.dir/test_heevd.cpp.o.d"
  "test_heevd"
  "test_heevd.pdb"
  "test_heevd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heevd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
