# Empty dependencies file for test_heevd.
# This may be replaced when dependencies are built.
