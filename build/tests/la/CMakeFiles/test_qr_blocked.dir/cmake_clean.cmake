file(REMOVE_RECURSE
  "CMakeFiles/test_qr_blocked.dir/test_qr_blocked.cpp.o"
  "CMakeFiles/test_qr_blocked.dir/test_qr_blocked.cpp.o.d"
  "test_qr_blocked"
  "test_qr_blocked.pdb"
  "test_qr_blocked[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qr_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
