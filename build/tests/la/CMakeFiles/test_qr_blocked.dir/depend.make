# Empty dependencies file for test_qr_blocked.
# This may be replaced when dependencies are built.
