# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_chase_sequential[1]_include.cmake")
include("/root/repo/build/tests/core/test_chase_distributed[1]_include.cmake")
include("/root/repo/build/tests/core/test_dos[1]_include.cmake")
include("/root/repo/build/tests/core/test_chase_properties[1]_include.cmake")
include("/root/repo/build/tests/core/test_operator[1]_include.cmake")
include("/root/repo/build/tests/core/test_sequence[1]_include.cmake")
include("/root/repo/build/tests/core/test_lanczos[1]_include.cmake")
include("/root/repo/build/tests/core/test_solve_sweep[1]_include.cmake")
include("/root/repo/build/tests/core/test_generalized[1]_include.cmake")
include("/root/repo/build/tests/core/test_custom_bounds[1]_include.cmake")
