file(REMOVE_RECURSE
  "CMakeFiles/test_chase_properties.dir/test_chase_properties.cpp.o"
  "CMakeFiles/test_chase_properties.dir/test_chase_properties.cpp.o.d"
  "test_chase_properties"
  "test_chase_properties.pdb"
  "test_chase_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
