# Empty dependencies file for test_chase_properties.
# This may be replaced when dependencies are built.
