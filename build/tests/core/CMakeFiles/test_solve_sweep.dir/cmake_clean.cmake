file(REMOVE_RECURSE
  "CMakeFiles/test_solve_sweep.dir/test_solve_sweep.cpp.o"
  "CMakeFiles/test_solve_sweep.dir/test_solve_sweep.cpp.o.d"
  "test_solve_sweep"
  "test_solve_sweep.pdb"
  "test_solve_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solve_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
