# Empty dependencies file for test_solve_sweep.
# This may be replaced when dependencies are built.
