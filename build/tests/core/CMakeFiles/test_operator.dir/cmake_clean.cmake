file(REMOVE_RECURSE
  "CMakeFiles/test_operator.dir/test_operator.cpp.o"
  "CMakeFiles/test_operator.dir/test_operator.cpp.o.d"
  "test_operator"
  "test_operator.pdb"
  "test_operator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
