# Empty dependencies file for test_operator.
# This may be replaced when dependencies are built.
