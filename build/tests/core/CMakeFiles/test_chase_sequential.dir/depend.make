# Empty dependencies file for test_chase_sequential.
# This may be replaced when dependencies are built.
