file(REMOVE_RECURSE
  "CMakeFiles/test_chase_sequential.dir/test_chase_sequential.cpp.o"
  "CMakeFiles/test_chase_sequential.dir/test_chase_sequential.cpp.o.d"
  "test_chase_sequential"
  "test_chase_sequential.pdb"
  "test_chase_sequential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
