# Empty compiler generated dependencies file for test_generalized.
# This may be replaced when dependencies are built.
