file(REMOVE_RECURSE
  "CMakeFiles/test_custom_bounds.dir/test_custom_bounds.cpp.o"
  "CMakeFiles/test_custom_bounds.dir/test_custom_bounds.cpp.o.d"
  "test_custom_bounds"
  "test_custom_bounds.pdb"
  "test_custom_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
