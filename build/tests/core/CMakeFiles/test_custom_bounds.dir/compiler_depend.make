# Empty compiler generated dependencies file for test_custom_bounds.
# This may be replaced when dependencies are built.
