file(REMOVE_RECURSE
  "CMakeFiles/test_chase_distributed.dir/test_chase_distributed.cpp.o"
  "CMakeFiles/test_chase_distributed.dir/test_chase_distributed.cpp.o.d"
  "test_chase_distributed"
  "test_chase_distributed.pdb"
  "test_chase_distributed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
