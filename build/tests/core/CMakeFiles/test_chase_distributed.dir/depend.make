# Empty dependencies file for test_chase_distributed.
# This may be replaced when dependencies are built.
