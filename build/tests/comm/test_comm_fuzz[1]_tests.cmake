add_test([=[CommFuzz.RandomCollectiveSequencesMatchOracle]=]  /root/repo/build/tests/comm/test_comm_fuzz [==[--gtest_filter=CommFuzz.RandomCollectiveSequencesMatchOracle]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CommFuzz.RandomCollectiveSequencesMatchOracle]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests/comm SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_comm_fuzz_TESTS CommFuzz.RandomCollectiveSequencesMatchOracle)
