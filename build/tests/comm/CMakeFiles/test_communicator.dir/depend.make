# Empty dependencies file for test_communicator.
# This may be replaced when dependencies are built.
