
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perf/test_report.cpp" "tests/perf/CMakeFiles/test_report.dir/test_report.cpp.o" "gcc" "tests/perf/CMakeFiles/test_report.dir/test_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chase_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/chase_la.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/chase_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/chase_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/chase_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/chase_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/chase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/chase_capi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
