# CMake generated Testfile for 
# Source directory: /root/repo/tests/qr
# Build directory: /root/repo/build/tests/qr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/qr/test_cholqr[1]_include.cmake")
include("/root/repo/build/tests/qr/test_condest[1]_include.cmake")
include("/root/repo/build/tests/qr/test_tsqr[1]_include.cmake")
include("/root/repo/build/tests/qr/test_qr_sweep[1]_include.cmake")
