file(REMOVE_RECURSE
  "CMakeFiles/test_condest.dir/test_condest.cpp.o"
  "CMakeFiles/test_condest.dir/test_condest.cpp.o.d"
  "test_condest"
  "test_condest.pdb"
  "test_condest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
