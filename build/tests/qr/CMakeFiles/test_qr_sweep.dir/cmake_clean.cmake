file(REMOVE_RECURSE
  "CMakeFiles/test_qr_sweep.dir/test_qr_sweep.cpp.o"
  "CMakeFiles/test_qr_sweep.dir/test_qr_sweep.cpp.o.d"
  "test_qr_sweep"
  "test_qr_sweep.pdb"
  "test_qr_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
