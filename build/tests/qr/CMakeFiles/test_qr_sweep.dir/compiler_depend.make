# Empty compiler generated dependencies file for test_qr_sweep.
# This may be replaced when dependencies are built.
