file(REMOVE_RECURSE
  "CMakeFiles/test_cholqr.dir/test_cholqr.cpp.o"
  "CMakeFiles/test_cholqr.dir/test_cholqr.cpp.o.d"
  "test_cholqr"
  "test_cholqr.pdb"
  "test_cholqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
