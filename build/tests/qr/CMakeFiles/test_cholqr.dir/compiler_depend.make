# Empty compiler generated dependencies file for test_cholqr.
# This may be replaced when dependencies are built.
