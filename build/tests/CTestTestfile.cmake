# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("la")
subdirs("comm")
subdirs("dist")
subdirs("qr")
subdirs("core")
subdirs("baseline")
subdirs("gen")
subdirs("perf")
subdirs("model")
subdirs("capi")
