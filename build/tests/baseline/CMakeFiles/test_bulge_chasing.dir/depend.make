# Empty dependencies file for test_bulge_chasing.
# This may be replaced when dependencies are built.
