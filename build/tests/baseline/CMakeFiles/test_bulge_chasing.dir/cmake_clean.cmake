file(REMOVE_RECURSE
  "CMakeFiles/test_bulge_chasing.dir/test_bulge_chasing.cpp.o"
  "CMakeFiles/test_bulge_chasing.dir/test_bulge_chasing.cpp.o.d"
  "test_bulge_chasing"
  "test_bulge_chasing.pdb"
  "test_bulge_chasing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bulge_chasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
