# CMake generated Testfile for 
# Source directory: /root/repo/tests/baseline
# Build directory: /root/repo/build/tests/baseline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/baseline/test_direct[1]_include.cmake")
include("/root/repo/build/tests/baseline/test_bulge_chasing[1]_include.cmake")
