# CMake generated Testfile for 
# Source directory: /root/repo/tests/dist
# Build directory: /root/repo/build/tests/dist
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dist/test_index_map[1]_include.cmake")
include("/root/repo/build/tests/dist/test_dist_matrix[1]_include.cmake")
include("/root/repo/build/tests/dist/test_redistribute[1]_include.cmake")
