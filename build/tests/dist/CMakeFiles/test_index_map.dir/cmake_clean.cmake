file(REMOVE_RECURSE
  "CMakeFiles/test_index_map.dir/test_index_map.cpp.o"
  "CMakeFiles/test_index_map.dir/test_index_map.cpp.o.d"
  "test_index_map"
  "test_index_map.pdb"
  "test_index_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
