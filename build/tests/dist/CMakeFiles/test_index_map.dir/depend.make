# Empty dependencies file for test_index_map.
# This may be replaced when dependencies are built.
