# Empty compiler generated dependencies file for chase_common.
# This may be replaced when dependencies are built.
