file(REMOVE_RECURSE
  "libchase_common.a"
)
