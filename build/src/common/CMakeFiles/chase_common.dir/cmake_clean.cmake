file(REMOVE_RECURSE
  "CMakeFiles/chase_common.dir/log.cpp.o"
  "CMakeFiles/chase_common.dir/log.cpp.o.d"
  "libchase_common.a"
  "libchase_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
