# CMake generated Testfile for 
# Source directory: /root/repo/src/qr
# Build directory: /root/repo/build/src/qr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
