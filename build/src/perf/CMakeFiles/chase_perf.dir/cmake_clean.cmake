file(REMOVE_RECURSE
  "CMakeFiles/chase_perf.dir/cost_model.cpp.o"
  "CMakeFiles/chase_perf.dir/cost_model.cpp.o.d"
  "CMakeFiles/chase_perf.dir/machine.cpp.o"
  "CMakeFiles/chase_perf.dir/machine.cpp.o.d"
  "CMakeFiles/chase_perf.dir/report.cpp.o"
  "CMakeFiles/chase_perf.dir/report.cpp.o.d"
  "CMakeFiles/chase_perf.dir/tracker.cpp.o"
  "CMakeFiles/chase_perf.dir/tracker.cpp.o.d"
  "libchase_perf.a"
  "libchase_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
