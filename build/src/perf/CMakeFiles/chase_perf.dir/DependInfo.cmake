
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/cost_model.cpp" "src/perf/CMakeFiles/chase_perf.dir/cost_model.cpp.o" "gcc" "src/perf/CMakeFiles/chase_perf.dir/cost_model.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/perf/CMakeFiles/chase_perf.dir/machine.cpp.o" "gcc" "src/perf/CMakeFiles/chase_perf.dir/machine.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/perf/CMakeFiles/chase_perf.dir/report.cpp.o" "gcc" "src/perf/CMakeFiles/chase_perf.dir/report.cpp.o.d"
  "/root/repo/src/perf/tracker.cpp" "src/perf/CMakeFiles/chase_perf.dir/tracker.cpp.o" "gcc" "src/perf/CMakeFiles/chase_perf.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
