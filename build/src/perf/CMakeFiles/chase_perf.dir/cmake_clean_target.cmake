file(REMOVE_RECURSE
  "libchase_perf.a"
)
