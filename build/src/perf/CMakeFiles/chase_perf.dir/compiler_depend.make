# Empty compiler generated dependencies file for chase_perf.
# This may be replaced when dependencies are built.
