# Empty dependencies file for chase_gen.
# This may be replaced when dependencies are built.
