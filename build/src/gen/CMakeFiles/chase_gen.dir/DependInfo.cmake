
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/suite.cpp" "src/gen/CMakeFiles/chase_gen.dir/suite.cpp.o" "gcc" "src/gen/CMakeFiles/chase_gen.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/chase_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
