file(REMOVE_RECURSE
  "libchase_gen.a"
)
