file(REMOVE_RECURSE
  "CMakeFiles/chase_gen.dir/suite.cpp.o"
  "CMakeFiles/chase_gen.dir/suite.cpp.o.d"
  "libchase_gen.a"
  "libchase_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
