# Empty dependencies file for chase_comm.
# This may be replaced when dependencies are built.
