file(REMOVE_RECURSE
  "libchase_comm.a"
)
