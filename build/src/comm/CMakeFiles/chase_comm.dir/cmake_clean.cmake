file(REMOVE_RECURSE
  "CMakeFiles/chase_comm.dir/communicator.cpp.o"
  "CMakeFiles/chase_comm.dir/communicator.cpp.o.d"
  "libchase_comm.a"
  "libchase_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
