file(REMOVE_RECURSE
  "libchase_capi.a"
)
