# Empty dependencies file for chase_capi.
# This may be replaced when dependencies are built.
