file(REMOVE_RECURSE
  "CMakeFiles/chase_capi.dir/chase_c.cpp.o"
  "CMakeFiles/chase_capi.dir/chase_c.cpp.o.d"
  "libchase_capi.a"
  "libchase_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
