file(REMOVE_RECURSE
  "CMakeFiles/chase_model.dir/chase_model.cpp.o"
  "CMakeFiles/chase_model.dir/chase_model.cpp.o.d"
  "CMakeFiles/chase_model.dir/elpa_model.cpp.o"
  "CMakeFiles/chase_model.dir/elpa_model.cpp.o.d"
  "libchase_model.a"
  "libchase_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
