file(REMOVE_RECURSE
  "libchase_model.a"
)
