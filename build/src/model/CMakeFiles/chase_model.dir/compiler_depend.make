# Empty compiler generated dependencies file for chase_model.
# This may be replaced when dependencies are built.
