# Empty dependencies file for chase_dist.
# This may be replaced when dependencies are built.
