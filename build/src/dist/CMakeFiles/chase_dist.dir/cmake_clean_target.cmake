file(REMOVE_RECURSE
  "libchase_dist.a"
)
