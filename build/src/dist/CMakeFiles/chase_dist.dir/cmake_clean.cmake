file(REMOVE_RECURSE
  "CMakeFiles/chase_dist.dir/index_map.cpp.o"
  "CMakeFiles/chase_dist.dir/index_map.cpp.o.d"
  "libchase_dist.a"
  "libchase_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
