file(REMOVE_RECURSE
  "CMakeFiles/chase_la.dir/la.cpp.o"
  "CMakeFiles/chase_la.dir/la.cpp.o.d"
  "libchase_la.a"
  "libchase_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
