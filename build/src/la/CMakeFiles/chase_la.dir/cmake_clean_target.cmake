file(REMOVE_RECURSE
  "libchase_la.a"
)
