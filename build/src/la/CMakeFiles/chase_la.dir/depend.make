# Empty dependencies file for chase_la.
# This may be replaced when dependencies are built.
