file(REMOVE_RECURSE
  "CMakeFiles/dft_sequence.dir/dft_sequence.cpp.o"
  "CMakeFiles/dft_sequence.dir/dft_sequence.cpp.o.d"
  "dft_sequence"
  "dft_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dft_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
