# Empty dependencies file for dft_sequence.
# This may be replaced when dependencies are built.
