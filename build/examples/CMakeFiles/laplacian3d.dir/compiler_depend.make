# Empty compiler generated dependencies file for laplacian3d.
# This may be replaced when dependencies are built.
