file(REMOVE_RECURSE
  "CMakeFiles/laplacian3d.dir/laplacian3d.cpp.o"
  "CMakeFiles/laplacian3d.dir/laplacian3d.cpp.o.d"
  "laplacian3d"
  "laplacian3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplacian3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
