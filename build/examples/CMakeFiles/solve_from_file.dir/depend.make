# Empty dependencies file for solve_from_file.
# This may be replaced when dependencies are built.
