file(REMOVE_RECURSE
  "CMakeFiles/solve_from_file.dir/solve_from_file.cpp.o"
  "CMakeFiles/solve_from_file.dir/solve_from_file.cpp.o.d"
  "solve_from_file"
  "solve_from_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_from_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
