file(REMOVE_RECURSE
  "CMakeFiles/bse_spectrum.dir/bse_spectrum.cpp.o"
  "CMakeFiles/bse_spectrum.dir/bse_spectrum.cpp.o.d"
  "bse_spectrum"
  "bse_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bse_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
