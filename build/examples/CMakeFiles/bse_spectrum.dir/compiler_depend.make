# Empty compiler generated dependencies file for bse_spectrum.
# This may be replaced when dependencies are built.
