file(REMOVE_RECURSE
  "CMakeFiles/generalized_dft.dir/generalized_dft.cpp.o"
  "CMakeFiles/generalized_dft.dir/generalized_dft.cpp.o.d"
  "generalized_dft"
  "generalized_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
