# Empty compiler generated dependencies file for generalized_dft.
# This may be replaced when dependencies are built.
