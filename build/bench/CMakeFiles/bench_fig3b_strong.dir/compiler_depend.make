# Empty compiler generated dependencies file for bench_fig3b_strong.
# This may be replaced when dependencies are built.
