file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_condest.dir/bench_fig1_condest.cpp.o"
  "CMakeFiles/bench_fig1_condest.dir/bench_fig1_condest.cpp.o.d"
  "bench_fig1_condest"
  "bench_fig1_condest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_condest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
