# Empty compiler generated dependencies file for bench_fig1_condest.
# This may be replaced when dependencies are built.
