# Empty dependencies file for bench_table2_qr.
# This may be replaced when dependencies are built.
