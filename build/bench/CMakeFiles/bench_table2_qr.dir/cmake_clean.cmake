file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_qr.dir/bench_table2_qr.cpp.o"
  "CMakeFiles/bench_table2_qr.dir/bench_table2_qr.cpp.o.d"
  "bench_table2_qr"
  "bench_table2_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
