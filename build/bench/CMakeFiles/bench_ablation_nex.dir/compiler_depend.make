# Empty compiler generated dependencies file for bench_ablation_nex.
# This may be replaced when dependencies are built.
