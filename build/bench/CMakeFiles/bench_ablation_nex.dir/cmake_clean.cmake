file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nex.dir/bench_ablation_nex.cpp.o"
  "CMakeFiles/bench_ablation_nex.dir/bench_ablation_nex.cpp.o.d"
  "bench_ablation_nex"
  "bench_ablation_nex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
