# Empty compiler generated dependencies file for micro_qr_variants.
# This may be replaced when dependencies are built.
