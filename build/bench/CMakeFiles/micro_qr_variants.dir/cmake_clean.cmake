file(REMOVE_RECURSE
  "CMakeFiles/micro_qr_variants.dir/micro_qr_variants.cpp.o"
  "CMakeFiles/micro_qr_variants.dir/micro_qr_variants.cpp.o.d"
  "micro_qr_variants"
  "micro_qr_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_qr_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
