
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_qr_variants.cpp" "bench/CMakeFiles/micro_qr_variants.dir/micro_qr_variants.cpp.o" "gcc" "bench/CMakeFiles/micro_qr_variants.dir/micro_qr_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chase_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/chase_la.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/chase_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/chase_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/chase_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/chase_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/chase_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
