file(REMOVE_RECURSE
  "CMakeFiles/micro_filter.dir/micro_filter.cpp.o"
  "CMakeFiles/micro_filter.dir/micro_filter.cpp.o.d"
  "micro_filter"
  "micro_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
