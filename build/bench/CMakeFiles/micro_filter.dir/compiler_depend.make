# Empty compiler generated dependencies file for micro_filter.
# This may be replaced when dependencies are built.
